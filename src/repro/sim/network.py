"""Core interfaces implemented by every network element.

Two abstractions tie the simulator together:

* :class:`PacketSink` — anything that can receive a packet (queues, pipes,
  protocol endpoints, loss generators used in tests).
* :class:`NetworkEndpoint` — a protocol entity attached to a host; provides
  the plumbing shared by every sender/receiver implementation (clock access,
  packet injection onto a route).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.sim.eventlist import EventList
from repro.sim.packet import Packet, Route


class PacketSink(abc.ABC):
    """Interface for any element that packets can be delivered to."""

    #: human-readable identifier, set by subclasses; used in route dumps
    name: str = "sink"

    @abc.abstractmethod
    def receive_packet(self, packet: Packet) -> None:
        """Handle an arriving packet."""


class CountingSink(PacketSink):
    """A terminal sink that simply counts what arrives.

    Useful in unit tests and micro-benchmarks where no protocol endpoint is
    needed at the end of a route.
    """

    def __init__(self, name: str = "counting-sink") -> None:
        self.name = name
        self.packets_received = 0
        self.bytes_received = 0
        self.last_packet: Optional[Packet] = None

    def receive_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size
        self.last_packet = packet


class NetworkEndpoint(PacketSink):
    """Base class for protocol senders and receivers.

    Endpoints live on hosts; they originate packets by placing them on a
    route whose first element is the host's NIC queue and whose last element
    is the peer endpoint.  Slot descriptors are declared for the fixed
    attributes (subclasses may still add ad-hoc ones — the abstract base
    carries no slots, so instances keep a ``__dict__``).
    """

    __slots__ = ("eventlist", "node_id", "name")

    def __init__(self, eventlist: EventList, node_id: int, name: str) -> None:
        self.eventlist = eventlist
        self.node_id = node_id
        self.name = name

    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self.eventlist.now()

    def inject(self, packet: Packet, route: Route) -> None:
        """Stamp *packet* with *route* and the current time, then forward it."""
        # set_route + first hop, flattened (one call per originated packet)
        packet.route = route
        packet.path_id = route.path_id
        packet.hop = 1
        packet.send_time = self.eventlist._now
        route.elements[0].receive_packet(packet)

    def bounce(self, packet: Packet, delay_ps: int) -> None:
        """Deliver a returned-to-sender packet back to this endpoint.

        The bouncing switch calls this instead of scheduling delivery
        itself so that a sharded run can substitute a proxy endpoint that
        marshals the bounce to the origin shard.  A bounce delivery is
        never cancelled, so a raw entry suffices.
        """
        self.eventlist.schedule_raw_in(delay_ps, self.receive_packet, (packet,))

    @abc.abstractmethod
    def receive_packet(self, packet: Packet) -> None:
        """Handle an arriving packet (protocol specific)."""
