"""Fixed-delay propagation links.

A :class:`Pipe` models the propagation delay of a cable (plus any fixed
per-hop switching latency the experimenter wants to fold in).  Pipes never
drop, reorder or serialize packets — serialization happens in the queue that
precedes the pipe — so an arbitrary number of packets can be "in flight" on a
pipe at once.
"""

from __future__ import annotations

from repro.sim.eventlist import EventList
from repro.sim.network import PacketSink
from repro.sim.packet import Packet


class Pipe(PacketSink):
    """A link with fixed one-way propagation delay."""

    def __init__(self, eventlist: EventList, delay_ps: int, name: str = "pipe") -> None:
        if delay_ps < 0:
            raise ValueError(f"pipe delay must be non-negative, got {delay_ps}")
        self.eventlist = eventlist
        self.delay_ps = delay_ps
        self.name = name
        self.packets_carried = 0
        self.bytes_carried = 0

    def receive_packet(self, packet: Packet) -> None:
        """Deliver *packet* to its next hop after the propagation delay."""
        self.packets_carried += 1
        self.bytes_carried += packet.size
        self.eventlist.schedule_in(self.delay_ps, packet.send_to_next_hop)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipe({self.name}, {self.delay_ps} ps)"
