"""Fixed-delay propagation links.

A :class:`Pipe` models the propagation delay of a cable (plus any fixed
per-hop switching latency the experimenter wants to fold in).  Pipes never
drop, reorder or serialize packets — serialization happens in the queue that
precedes the pipe — so an arbitrary number of packets can be "in flight" on a
pipe at once.
"""

from __future__ import annotations

from bisect import insort as _insort
from heapq import heappush as _heappush

from repro.sim.eventlist import _WHEEL_MASK, _WHEEL_SHIFT, _WHEEL_SLOTS, EventList
from repro.sim.network import PacketSink
from repro.sim.packet import Packet


class Pipe(PacketSink):
    """A link with fixed one-way propagation delay."""

    __slots__ = ("eventlist", "delay_ps", "name", "packets_carried", "bytes_carried")

    def __init__(self, eventlist: EventList, delay_ps: int, name: str = "pipe") -> None:
        if delay_ps < 0:
            raise ValueError(f"pipe delay must be non-negative, got {delay_ps}")
        self.eventlist = eventlist
        self.delay_ps = delay_ps
        self.name = name
        self.packets_carried = 0
        self.bytes_carried = 0

    def set_delay_ps(self, delay_ps: int) -> None:
        """Change the propagation delay (cable swap / reroute mid-run).

        Packets already in flight keep the delay they departed with; only
        subsequent arrivals see the new value.
        """
        if delay_ps < 0:
            raise ValueError(f"pipe delay must be non-negative, got {delay_ps}")
        self.delay_ps = delay_ps

    def receive_packet(self, packet: Packet) -> None:
        """Deliver *packet* to its next hop after the propagation delay."""
        self.packets_carried += 1
        self.bytes_carried += packet.size
        # Raw scheduler entry, inlined (the EventList._insert fast path): a
        # delivery is never cancelled and delay_ps >= 0, so neither the guard
        # nor an Event handle — nor even the call frame — is worth paying on
        # the busiest per-packet path in the simulator.  The hop pointer is
        # advanced now (the route cannot change in flight), so the delivery
        # event calls the downstream element directly.
        hop = packet.hop
        sink = packet.route.elements[hop]
        packet.hop = hop + 1
        eventlist = self.eventlist
        when = eventlist._now + self.delay_ps
        seq = eventlist._sequence = eventlist._sequence + 1
        # recycled six-slot entry carrying a bare (callback, packet) pair
        # (arity 1) — no argument tuple is ever allocated for a delivery
        pool = eventlist._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = when
            entry[1] = seq
            entry[2] = None
            entry[3] = 1
            entry[4] = sink.receive_packet
            entry[5] = packet
        else:
            eventlist.entry_allocs += 1
            entry = [when, seq, None, 1, sink.receive_packet, packet]
        delta = (when >> _WHEEL_SHIFT) - eventlist._cursor
        if delta <= 0:
            _insort(eventlist._cur_spill, entry)
            eventlist._wheel_count += 1
        elif delta < _WHEEL_SLOTS:
            eventlist._wheel[(when >> _WHEEL_SHIFT) & _WHEEL_MASK].append(entry)
            eventlist._wheel_count += 1
        else:
            _heappush(eventlist._far, entry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipe({self.name}, {self.delay_ps} ps)"


class TappedPipe(Pipe):
    """A pipe with a per-packet fault tap (see :mod:`repro.sim.faults`).

    ``tap`` is called with each arriving packet and returns a
    ``(verdict, extra_delay_ps)`` pair — the contract of
    :meth:`repro.sim.faults.FaultInjector.inspect`.  Deliberately a distinct
    type from :class:`Pipe`: the queues' fused forwarding fast path only
    triggers on ``type(next) is Pipe``, so a tapped pipe always receives the
    virtual :meth:`receive_packet` call.  Passed packets take exactly the
    same scheduling path as an untapped pipe, so installing a tap that
    matches nothing leaves a seeded run bit-identical.
    """

    __slots__ = ("tap", "packets_dropped", "packets_delayed")

    def __init__(self, eventlist: EventList, delay_ps: int, tap, name: str = "tapped-pipe") -> None:
        super().__init__(eventlist, delay_ps, name=name)
        self.tap = tap
        self.packets_dropped = 0
        self.packets_delayed = 0

    def receive_packet(self, packet: Packet) -> None:
        verdict, extra_ps = self.tap(packet)
        if verdict == "drop":
            self.packets_dropped += 1
            packet.release()  # slot pool: a dropped packet dies here
            return
        if verdict == "delay":
            self.packets_delayed += 1
            self.packets_carried += 1
            self.bytes_carried += packet.size
            hop = packet.hop
            sink = packet.route.elements[hop]
            packet.hop = hop + 1
            self.eventlist.schedule_raw_in(
                self.delay_ps + extra_ps, sink.receive_packet, (packet,)
            )
            return
        Pipe.receive_packet(self, packet)
