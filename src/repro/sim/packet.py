"""Base packet and route abstractions.

A :class:`Packet` is the unit moved around by the simulator.  It carries an
explicit :class:`Route` — an ordered list of :class:`~repro.sim.network.PacketSink`
elements (queues, pipes and finally the destination endpoint) — which the
sending host chooses.  This models source routing, the mechanism NDP uses to
spread the packets of a single flow over every available path of a Clos
topology (see §3.1.1 of the paper).

Protocol packages subclass :class:`Packet` (``NdpDataPacket``, ``TcpPacket``,
…) to add protocol fields; the switch and link code only relies on the base
attributes defined here (size, priority, ECN bits, trimming support).
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Sequence, TYPE_CHECKING

from repro.sim.units import HEADER_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.network import PacketSink
    from repro.sim.pool import PacketPool

#: Packets constructed through ``__init__`` since interpreter start (pooled
#: allocations go through ``__new__`` + ``PacketPool.adopt`` and are counted
#: by the pool instead).  Deterministic — unlike gc counters it is unaffected
#: by interpreter internals, which matters with gc disabled during runs.
_CONSTRUCTIONS = 0


def construction_count() -> int:
    """Packets constructed via ``__init__`` so far (monotonic counter)."""
    return _CONSTRUCTIONS


class PacketPriority(enum.IntEnum):
    """Queueing priority of a packet inside an NDP switch.

    ``HIGH`` is used by trimmed headers and by control packets (ACK, NACK,
    PULL); ``LOW`` by full data packets.
    """

    LOW = 0
    HIGH = 1


class Route:
    """An ordered list of network elements a packet traverses.

    Routes are immutable once built; topologies construct one forward route
    and one reverse route per (source, destination, path) triple and the
    protocol endpoints reuse them for every packet.
    """

    __slots__ = ("elements", "path_id", "reverse")

    def __init__(
        self,
        elements: Sequence["PacketSink"],
        path_id: int = 0,
        reverse: Optional["Route"] = None,
    ) -> None:
        self.elements: tuple["PacketSink", ...] = tuple(elements)
        self.path_id = path_id
        self.reverse = reverse

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterable["PacketSink"]:
        return iter(self.elements)

    def __getitem__(self, index: int) -> "PacketSink":
        return self.elements[index]

    def destination(self) -> "PacketSink":
        """The final element of the route (normally a protocol endpoint)."""
        return self.elements[-1]

    def extended(self, *extra: "PacketSink") -> "Route":
        """Return a new route with *extra* elements appended."""
        return Route(self.elements + tuple(extra), path_id=self.path_id, reverse=self.reverse)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = [getattr(e, "name", e.__class__.__name__) for e in self.elements]
        return f"Route(path={self.path_id}, {' -> '.join(names)})"


class Packet:
    """Base class for every packet in the simulator.

    Attributes
    ----------
    flow_id:
        Identifier of the flow (connection) the packet belongs to.
    src, dst:
        Host identifiers; purely informational for the simulator core, used
        by protocol endpoints and loggers.
    size:
        Current on-the-wire size in bytes.  Trimming a packet reduces this to
        the header size while remembering :attr:`original_size`.
    priority:
        Queueing priority at NDP switches.
    ecn_capable / ecn_ce:
        ECN support and Congestion-Experienced mark (used by DCTCP/DCQCN).
    path_id:
        Index of the path the sender chose for this packet, used by the NDP
        path scoreboard.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size",
        "original_size",
        "seqno",
        "route",
        "hop",
        "priority",
        "is_header_only",
        "bounced",
        "ecn_capable",
        "ecn_ce",
        "path_id",
        "send_time",
        # slot-pool plumbing (see repro.sim.pool): the owning pool, the
        # integer slot handle, and the generation stamp that detects stale
        # (freed) facades.  Unpooled packets keep _pool is None.
        "_pool",
        "_handle",
        "_gen",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        size: int,
        seqno: int = 0,
        route: Optional[Route] = None,
        priority: PacketPriority = PacketPriority.LOW,
        ecn_capable: bool = False,
    ) -> None:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        global _CONSTRUCTIONS
        _CONSTRUCTIONS += 1
        self._pool = None
        self._handle = -1
        self._gen = 0
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.original_size = size
        self.seqno = seqno
        self.route = route
        self.hop = 0
        self.priority = priority
        self.is_header_only = False
        self.bounced = False
        self.ecn_capable = ecn_capable
        self.ecn_ce = False
        self.path_id = route.path_id if route is not None else 0
        self.send_time: int = 0

    # --- forwarding ---------------------------------------------------------

    def set_route(self, route: Route) -> None:
        """Attach *route* and reset the hop pointer to its first element."""
        self.route = route
        self.hop = 0
        self.path_id = route.path_id

    def send_to_next_hop(self) -> None:
        """Deliver the packet to the next element on its route."""
        route = self.route
        if route is None:
            raise RuntimeError("packet has no route")
        hop = self.hop
        try:
            sink = route.elements[hop]  # direct tuple access: once per hop
        except IndexError:
            raise RuntimeError(
                f"packet {self!r} ran off the end of its route (hop {self.hop})"
            ) from None
        self.hop = hop + 1
        sink.receive_packet(self)

    def remaining_hops(self) -> int:
        """Number of elements left on the route (including the destination)."""
        if self.route is None:
            return 0
        return len(self.route) - self.hop

    # --- switch operations ---------------------------------------------------

    def trim(self, header_bytes: int = HEADER_BYTES) -> None:
        """Trim the payload, leaving only the header (NDP/CP switches).

        Trimmed packets are promoted to high priority — they travel in the
        switch header queue — and remember the original payload size so the
        receiver can account for the data that was cut.
        """
        if not self.is_header_only:
            self.original_size = self.size
        self.size = header_bytes
        self.is_header_only = True
        self.priority = PacketPriority.HIGH

    def mark_ecn(self) -> None:
        """Set the ECN Congestion-Experienced codepoint if ECN-capable."""
        if self.ecn_capable:
            self.ecn_ce = True

    def is_control(self) -> bool:
        """True for pure control packets (ACK/NACK/PULL); overridden by subclasses."""
        return False

    # --- slot-pool lifecycle (see repro.sim.pool) ----------------------------

    def release(self) -> None:
        """Return this packet's slot to its pool (no-op for unpooled packets).

        Called by whoever consumes the packet: the endpoint it was delivered
        to, or the queue/tap that dropped it.  Releasing a pooled packet
        twice raises :class:`~repro.sim.pool.PacketPoolError`.
        """
        pool = self._pool
        if pool is not None:
            pool.release(self)

    def is_freed(self) -> bool:
        """True if this facade's slot has been released (stale handle)."""
        pool = self._pool
        return pool is not None and self._gen != pool.generation[self._handle]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.__class__.__name__
        pool = self._pool
        if pool is not None and self._gen != pool.generation[self._handle]:
            # never read field values through a stale handle: the slot may
            # already belong to another packet (or be debug-poisoned)
            return f"{kind}(<freed slot {self._handle}>)"
        extra = " hdr" if self.is_header_only else ""
        return (
            f"{kind}(flow={self.flow_id}, seq={self.seqno}, {self.src}->{self.dst},"
            f" {self.size}B{extra})"
        )
