"""Time, rate and size units used throughout the simulator.

The simulation clock is an integer number of **picoseconds**.  Picoseconds
are fine-grained enough that serialization times at datacenter line rates are
exact integers (one byte at 10 Gb/s is exactly 800 ps), which keeps the event
ordering deterministic and free of floating-point drift.

Rates are expressed in bits per second and sizes in bytes.  The helpers below
convert between human-friendly units and the internal representation; prefer
them over writing magic constants such as ``10**12`` inline.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

#: one picosecond (the base unit of simulated time)
PICOSECOND = 1
#: one nanosecond in picoseconds
NANOSECOND = 1_000
#: one microsecond in picoseconds
MICROSECOND = 1_000_000
#: one millisecond in picoseconds
MILLISECOND = 1_000_000_000
#: one second in picoseconds
SECOND = 1_000_000_000_000


def picoseconds(value: float) -> int:
    """Return *value* picoseconds as an integer timestamp/duration."""
    return int(round(value))


def nanoseconds(value: float) -> int:
    """Return *value* nanoseconds as picoseconds."""
    return int(round(value * NANOSECOND))


def microseconds(value: float) -> int:
    """Return *value* microseconds as picoseconds."""
    return int(round(value * MICROSECOND))


def milliseconds(value: float) -> int:
    """Return *value* milliseconds as picoseconds."""
    return int(round(value * MILLISECOND))


def seconds(value: float) -> int:
    """Return *value* seconds as picoseconds."""
    return int(round(value * SECOND))


def to_microseconds(time_ps: int) -> float:
    """Convert an internal picosecond timestamp to (float) microseconds."""
    return time_ps / MICROSECOND


def to_milliseconds(time_ps: int) -> float:
    """Convert an internal picosecond timestamp to (float) milliseconds."""
    return time_ps / MILLISECOND


def to_seconds(time_ps: int) -> float:
    """Convert an internal picosecond timestamp to (float) seconds."""
    return time_ps / SECOND


# --- rates -----------------------------------------------------------------

#: one kilobit per second
KBPS = 1_000
#: one megabit per second
MBPS = 1_000_000
#: one gigabit per second
GBPS = 1_000_000_000

#: the link speed used in almost every experiment in the paper
DEFAULT_LINK_RATE_BPS = 10 * GBPS


def gbps(value: float) -> int:
    """Return *value* gigabits/second as bits/second."""
    return int(round(value * GBPS))


def mbps(value: float) -> int:
    """Return *value* megabits/second as bits/second."""
    return int(round(value * MBPS))


# --- sizes -----------------------------------------------------------------

#: bytes in a kilobyte (decimal, as used by the paper for transfer sizes)
KILOBYTE = 1_000
#: bytes in a megabyte
MEGABYTE = 1_000_000

#: jumbogram MTU used by NDP in the paper
JUMBO_MTU_BYTES = 9_000
#: conventional Ethernet MTU
ETHERNET_MTU_BYTES = 1_500
#: size of a trimmed NDP header (and of ACK/NACK/PULL control packets)
HEADER_BYTES = 64


def serialization_time_ps(size_bytes: int, rate_bps: int) -> int:
    """Time to serialize *size_bytes* onto a link of *rate_bps*.

    The result is rounded to the nearest picosecond; for the standard rates
    used in the paper (1/10/40 Gb/s) the result is exact.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return (size_bytes * 8 * SECOND + rate_bps // 2) // rate_bps


def bytes_in_time(duration_ps: int, rate_bps: int) -> int:
    """Number of whole bytes a link of *rate_bps* carries in *duration_ps*."""
    return (duration_ps * rate_bps) // (8 * SECOND)
