"""Append-only perf-history store (``BENCH_history.jsonl``).

``BENCH_perf.json`` is a single overwritten snapshot — useful for "what do
the numbers look like right now", useless for trajectories.  This module
gives every perf capture a durable, append-only trail: one JSONL record
per (scenario, capture), schema-versioned and keyed by scenario name plus
the git SHA the capture ran at, so the events/sec trajectory of each
scenario can be rendered (``repro.analysis.perf``) and gated
(``tools/check_perf.py``) across the repository's whole life.

Writer discipline matches the sweep cache (:mod:`repro.harness.sweep`):
the new content is staged to a unique temp file in the same directory and
``os.replace``d into place, so a reader never observes a torn line and a
crashed writer leaves the history untouched.  Because an append must
preserve *existing* records (unlike the cache's last-writer-wins records),
concurrent appenders additionally serialize through an ``O_EXCL`` lock
file — two processes appending simultaneously both land their records
(asserted by ``tests/analysis/test_history.py``).

Records are written as canonical JSON (sorted keys, shortest-repr floats)
so the history file itself is diff- and golden-friendly.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, List, Mapping, Sequence

from repro.analysis.canonical import canonical_json

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "HistoryError",
    "make_records",
    "append_history",
    "read_history",
]

#: schema identifier stamped into every record
SCHEMA = "repro.perf_history"
#: current record version; bump on incompatible field changes.
#:
#: * **v1** — the PR 8 layout: the required measurement fields below.
#: * **v2** — adds the optional allocation metrics ``allocs_per_event`` and
#:   ``legacy_allocs_per_event`` (the columnar packet core's headline
#:   numbers).  Optional means exactly that: a v2 record without them is
#:   valid, and a v1 record (which cannot have them) reads unchanged — the
#:   reader accepts every version ``<= SCHEMA_VERSION``.
#: * **v3** — adds the optional sharded-run metrics
#:   ``aggregate_events_per_second`` (total events over the slowest shard's
#:   CPU-busy seconds — the parallel-capacity figure ``shard_scale`` is
#:   gated on), ``shards``, ``windows``, ``boundary_packets`` and
#:   ``max_shard_busy_seconds``.  Present only on scenarios run through the
#:   shard harness; single-process captures are unchanged.
SCHEMA_VERSION = 3

#: a lock older than this is assumed to belong to a dead writer
_LOCK_STALE_SECONDS = 30.0
#: give up waiting for the lock after this long
_LOCK_TIMEOUT_SECONDS = 60.0

#: the per-scenario measurement fields copied from a perf capture
_MEASUREMENT_FIELDS = (
    "scenario",
    "wall_seconds",
    "events_executed",
    "events_per_second",
    "peak_pending_events",
    "completed_flows",
    "total_flows",
    "final_time_ps",
    "flow_digest",
)


class HistoryError(ValueError):
    """A history file is corrupt, truncated, or from an unknown schema."""


def make_records(
    scenarios: Mapping[str, Mapping[str, Any]],
    environment: Mapping[str, Any],
    git_sha: str,
    captured_at_unix: float,
) -> List[Dict[str, Any]]:
    """One schema-versioned history record per scenario of a capture.

    *scenarios* is the ``{name: measurement}`` mapping a perf run produces
    (``PerfResult.as_dict()`` values); per-transport extras (the
    ``transport_matrix`` sub-digests) are carried along untouched, as are
    the schema-v2 optional allocation metrics (``allocs_per_event`` /
    ``legacy_allocs_per_event``) — present when the scenario has a packet
    pool to count, absent otherwise, never required.
    """
    records = []
    for name, measurement in scenarios.items():
        record: Dict[str, Any] = {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "scenario": name,
            "git_sha": git_sha,
            "captured_at_unix": round(float(captured_at_unix), 3),
            "environment": dict(environment),
        }
        for key, value in measurement.items():
            if key != "scenario":  # the outer key is authoritative
                record[key] = value
        missing = [f for f in _MEASUREMENT_FIELDS if f not in record and f != "scenario"]
        if missing:
            raise HistoryError(
                f"scenario {name!r} measurement lacks field(s): {', '.join(missing)}"
            )
        records.append(record)
    return records


def append_history(path: str, records: Sequence[Mapping[str, Any]]) -> int:
    """Atomically append *records* to the JSONL history at *path*.

    Returns the total record-line count after the append.  The whole file
    is rewritten through a temp file + ``os.replace`` under an exclusive
    lock: concurrent appenders serialize, a crash mid-write leaves the old
    file intact, and a reader can never see half a line.  Existing bytes —
    including any corrupt line a reader would reject — are preserved
    verbatim; this writer never destroys history.
    """
    if not records:
        return _count_lines(path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    new_lines = "".join(canonical_json(dict(record)) + "\n" for record in records)
    with _locked(path):
        try:
            with open(path, "rb") as fh:
                existing = fh.read()
        except FileNotFoundError:
            existing = b""
        if existing and not existing.endswith(b"\n"):
            existing += b"\n"  # a torn trailer stays visible as its own line
        payload = existing + new_lines.encode("utf-8")
        fd, staging = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".tmp.", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(staging, path)
        except BaseException:
            try:
                os.remove(staging)
            except OSError:
                pass
            raise
    return payload.count(b"\n")


def read_history(path: str) -> List[Dict[str, Any]]:
    """Parse every record of the history at *path*, strictly.

    Raises :class:`HistoryError` (a ``ValueError``) with the offending line
    number for corrupt JSON, records from a foreign schema, or versions
    newer than this reader understands; ``FileNotFoundError`` passes
    through.  Blank lines are tolerated (a hand-edited file stays
    readable).
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise HistoryError(
                    f"{path}: line {number} is not valid JSON ({error})"
                ) from error
            if not isinstance(record, dict) or record.get("schema") != SCHEMA:
                raise HistoryError(
                    f"{path}: line {number} is not a {SCHEMA} record"
                )
            version = record.get("schema_version")
            if not isinstance(version, int) or version > SCHEMA_VERSION:
                raise HistoryError(
                    f"{path}: line {number} has schema_version {version!r}; "
                    f"this reader understands <= {SCHEMA_VERSION}"
                )
            if not isinstance(record.get("scenario"), str):
                raise HistoryError(
                    f"{path}: line {number} lacks a scenario name"
                )
            records.append(record)
    return records


def _count_lines(path: str) -> int:
    try:
        with open(path, "rb") as fh:
            return fh.read().count(b"\n")
    except FileNotFoundError:
        return 0


class _locked:
    """Exclusive advisory lock via ``O_CREAT | O_EXCL`` on ``path.lock``.

    Portable (works on any filesystem the history can live on), reentrancy-
    free by design, and self-healing: a lock whose mtime is older than
    :data:`_LOCK_STALE_SECONDS` is presumed abandoned by a dead writer and
    broken.  Contenders poll with a short sleep — appends are rare (one per
    perf capture) and tiny, so sophistication would buy nothing.
    """

    def __init__(self, path: str) -> None:
        self.lock_path = path + ".lock"

    def __enter__(self) -> "_locked":
        deadline = time.monotonic() + _LOCK_TIMEOUT_SECONDS
        while True:
            try:
                fd = os.open(self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                return self
            except FileExistsError:
                try:
                    if time.time() - os.stat(self.lock_path).st_mtime > _LOCK_STALE_SECONDS:
                        os.remove(self.lock_path)  # break a dead writer's lock
                        continue
                except OSError:
                    continue  # lock vanished between open and stat: retry now
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"could not acquire perf-history lock {self.lock_path}"
                    ) from None
                time.sleep(0.01)

    def __exit__(self, *_exc_info: Any) -> None:
        try:
            os.remove(self.lock_path)
        except OSError:
            pass
