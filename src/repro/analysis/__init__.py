"""``repro.analysis`` — results-to-figures pipeline and perf dashboard.

The verification surface between cached sweep results and the paper's
figures: a figure registry (:mod:`repro.analysis.registry`), canonical
CSV/JSON serialization (:mod:`repro.analysis.canonical`), the artifact
renderer behind ``python -m repro.cli render``
(:mod:`repro.analysis.render`), and the perf-history subsystem
(:mod:`repro.analysis.history`, :mod:`repro.analysis.perf`) that
``benchmarks/perf`` appends to and ``tools/check_perf.py`` gates CI on.

Everything written here is byte-deterministic: cold, cached and parallel
renders of the same figures produce identical files, golden-locked by
``tests/analysis``.
"""

from repro.analysis.canonical import (
    canonical_cell,
    canonical_float,
    canonical_json,
    flatten_row,
    rows_to_csv,
)
from repro.analysis.registry import (
    REGISTERED_FIGURES,
    RegisteredFigure,
    UnknownFigureError,
)
from repro.analysis.render import RenderReport, render_figures, vega_lite_spec

__all__ = [
    "REGISTERED_FIGURES",
    "RegisteredFigure",
    "RenderReport",
    "UnknownFigureError",
    "canonical_cell",
    "canonical_float",
    "canonical_json",
    "flatten_row",
    "render_figures",
    "rows_to_csv",
    "vega_lite_spec",
]
