"""Perf-regression dashboard: events/sec trajectories from the history.

Turns ``BENCH_history.jsonl`` (see :mod:`repro.analysis.history`) into the
rows behind the ``perf`` figure of the results-to-figures pipeline: one row
per (scenario, capture) with the capture's sequence index, git SHA, wall
time, events/sec and flow digest, ready for a canonical CSV and a
line-per-scenario Vega-Lite trajectory chart.

The history location resolves, in order: an explicit argument, the
``REPRO_PERF_HISTORY`` environment variable, then ``BENCH_history.jsonl``
at the repository root (derived from the installed package's location).  A
missing history renders as an *empty* trajectory — header-only CSV, empty
chart — rather than an error: the dashboard must be renderable on a fresh
clone; gating on emptiness is ``tools/check_perf.py``'s job, not the
renderer's.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.analysis.history import read_history
from repro.harness.figures import ArtifactMeta

__all__ = [
    "HISTORY_ENV",
    "PERF_META",
    "PERF_ALLOCS_META",
    "PERF_COLUMNS",
    "default_history_path",
    "trajectory_rows",
]

#: environment variable overriding the history file location
HISTORY_ENV = "REPRO_PERF_HISTORY"

#: chart metadata of the ``perf`` figure (the analysis registry's only
#: non-simulation figure — its data source is the history file, not a plan)
PERF_META = ArtifactMeta(
    "Scheduler throughput trajectory (events/sec per capture)",
    "line", "capture", "events_per_second", series="scenario",
)

#: chart metadata of the ``perf_allocs`` companion figure: the allocation
#: trajectory of the same history rows.  Schema-v1 captures predate the
#: metric and render as gaps, not zeros — Vega-Lite skips null y values
PERF_ALLOCS_META = ArtifactMeta(
    "Allocation trajectory (allocations per executed event)",
    "line", "capture", "allocs_per_event", series="scenario",
)

#: fixed CSV schema of the trajectory — explicit so an empty history still
#: yields a well-formed, header-only artifact
PERF_COLUMNS = (
    "scenario",
    "capture",
    "git_sha",
    "captured_at_unix",
    "python",
    "machine",
    "events_per_second",
    "events_executed",
    "wall_seconds",
    "peak_pending_events",
    "completed_flows",
    "total_flows",
    "allocs_per_event",
    "legacy_allocs_per_event",
    "flow_digest",
)


def default_history_path() -> str:
    """``$REPRO_PERF_HISTORY`` or ``<repo root>/BENCH_history.jsonl``."""
    override = os.environ.get(HISTORY_ENV)
    if override:
        return override
    import repro

    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    repo_root = os.path.dirname(os.path.dirname(package_root))
    return os.path.join(repo_root, "BENCH_history.jsonl")


def trajectory_rows(path: Optional[str] = None) -> List[Dict[str, Any]]:
    """The dashboard rows: per-scenario capture sequences, file order.

    ``capture`` numbers each scenario's records 0..N-1 in file (= append)
    order — the trajectory's x axis.  Environment facts are hoisted out of
    the nested record so the CSV matches :data:`PERF_COLUMNS` exactly.
    """
    if path is None:
        path = default_history_path()
    try:
        records = read_history(path)
    except FileNotFoundError:
        return []
    rows: List[Dict[str, Any]] = []
    sequence: Dict[str, int] = {}
    for record in records:
        scenario = record["scenario"]
        index = sequence.get(scenario, 0)
        sequence[scenario] = index + 1
        environment = record.get("environment") or {}
        row = {name: record.get(name) for name in PERF_COLUMNS}
        row["capture"] = index
        row["python"] = environment.get("python")
        row["machine"] = environment.get("machine")
        rows.append(row)
    return rows
