"""Artifact renderer: registered figures -> CSV + Vega-Lite + HTML index.

``render_figures(names, out_dir)`` is the engine behind ``python -m
repro.cli render``.  For every requested figure it writes

* ``<name>.csv`` — the tabulated rows in canonical form (sorted columns,
  shortest-repr floats, LF endings; see :mod:`repro.analysis.canonical`),
* ``<name>.vl.json`` — a Vega-Lite v5 spec whose ``data.url`` points at
  the CSV, serialized with sorted keys, and
* one ``index.html`` — a dependency-free page with every figure's data
  table inline plus a Vega-Embed block per chart (charts render when the
  CDN is reachable; the tables always render).

Simulation-backed figures execute through one
:func:`repro.harness.sweep.run_specs` batch, so a render shares the
persistent result cache with the plain CLI and benchmarks and fans across
``--jobs N`` workers; every byte written is identical across cold, cached
and parallel renders (golden-locked by ``tests/analysis/test_golden.py``).

Matplotlib is deliberately optional (the simulator is stdlib-only): when
it is importable and ``png=True``, a ``<name>.png`` is rendered per figure
as a convenience.  PNGs are *not* part of the byte-determinism contract —
raster output varies across matplotlib/freetype builds — which is exactly
why the canonical artifacts are CSV + Vega-Lite.
"""

from __future__ import annotations

import html
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.analysis.canonical import canonical_cell, canonical_json, flatten_row, rows_to_csv
from repro.analysis.registry import REGISTERED_FIGURES, RegisteredFigure, UnknownFigureError
from repro.harness import sweep
from repro.harness.figures import FIGURE_PLANS, ArtifactMeta

__all__ = ["RenderReport", "render_figures", "vega_lite_spec"]

#: rows shown inline per figure in the HTML index (full data is in the CSV)
_INDEX_MAX_ROWS = 40

_VEGA_CDN = (
    '<script src="https://cdn.jsdelivr.net/npm/vega@5"></script>\n'
    '<script src="https://cdn.jsdelivr.net/npm/vega-lite@5"></script>\n'
    '<script src="https://cdn.jsdelivr.net/npm/vega-embed@6"></script>\n'
)


@dataclass
class RenderReport:
    """What one :func:`render_figures` call produced."""

    out_dir: str
    figures: List[str] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)  # paths relative to out_dir
    rows_per_figure: Dict[str, int] = field(default_factory=dict)
    png_written: bool = False
    png_note: Optional[str] = None


def render_figures(
    names: Sequence[str],
    out_dir: str,
    jobs: int = 1,
    cache: Any = sweep.USE_DEFAULT_CACHE,
    on_result: Optional[Callable[[sweep.RunSpec, int, str], None]] = None,
    png: bool = False,
) -> RenderReport:
    """Render *names* (registry order-preserving) into *out_dir*.

    Unknown names raise :class:`UnknownFigureError` before any simulation
    starts.  All family plans are built first and their specs executed in
    one batch — figures interleave across the worker pool exactly like a
    multi-figure CLI run.
    """
    figures = [_resolve(name) for name in names]
    plans = {
        figure.name: FIGURE_PLANS[figure.family]()
        for figure in figures
        if figure.family is not None
    }
    all_specs: List[sweep.RunSpec] = []
    for figure in figures:
        if figure.family is not None:
            all_specs.extend(plans[figure.name].specs)
    spec_results = sweep.run_specs(all_specs, jobs=jobs, cache=cache, on_result=on_result)

    os.makedirs(out_dir, exist_ok=True)
    report = RenderReport(out_dir=out_dir)
    tables: Dict[str, List[Mapping[str, Any]]] = {}
    offset = 0
    for figure in figures:
        if figure.family is not None:
            plan = plans[figure.name]
            assembled = plan.assemble(spec_results[offset:offset + len(plan.specs)])
            offset += len(plan.specs)
        else:
            assembled = None
        rows = figure.tabulate(assembled)
        tables[figure.name] = rows
        csv_name = f"{figure.name}.csv"
        _write_text(os.path.join(out_dir, csv_name),
                    rows_to_csv(rows, columns=figure.columns))
        spec = vega_lite_spec(figure.meta, csv_name)
        _write_text(os.path.join(out_dir, f"{figure.name}.vl.json"),
                    canonical_json(spec, indent=2) + "\n")
        report.figures.append(figure.name)
        report.artifacts.extend([csv_name, f"{figure.name}.vl.json"])
        report.rows_per_figure[figure.name] = len(rows)

    _write_text(os.path.join(out_dir, "index.html"), _index_html(figures, tables))
    report.artifacts.append("index.html")

    if png:
        report.png_written, report.png_note = _render_pngs(figures, tables, out_dir)
        if report.png_written:
            report.artifacts.extend(f"{figure.name}.png" for figure in figures)
    return report


def _resolve(name: str) -> RegisteredFigure:
    try:
        return REGISTERED_FIGURES[name]
    except KeyError:
        raise UnknownFigureError(name) from None


def vega_lite_spec(meta: ArtifactMeta, csv_url: str) -> Dict[str, Any]:
    """A Vega-Lite v5 spec plotting the canonical CSV at *csv_url*."""
    encoding: Dict[str, Any] = {
        "x": {"field": meta.x, "type": meta.x_type,
              "axis": {"title": meta.x}},
        "y": {"field": meta.y, "type": "quantitative",
              "axis": {"title": meta.y}},
    }
    if meta.series is not None:
        encoding["color"] = {"field": meta.series, "type": "nominal",
                             "legend": {"title": meta.series}}
    mark: Any = meta.mark
    if meta.mark == "line":
        mark = {"type": "line", "point": True}
    return {
        "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
        "title": meta.title,
        "data": {"url": csv_url, "format": {"type": "csv"}},
        "mark": mark,
        "encoding": encoding,
        "width": 480,
        "height": 300,
    }


# ---------------------------------------------------------------------------
# HTML index
# ---------------------------------------------------------------------------

def _index_html(
    figures: Sequence[RegisteredFigure],
    tables: Mapping[str, List[Mapping[str, Any]]],
) -> str:
    """One deterministic page: nav, then per-figure chart mount + table."""
    parts: List[str] = [
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n",
        "<meta charset=\"utf-8\">\n",
        "<title>repro figure artifacts</title>\n",
        _VEGA_CDN,
        "<style>\n"
        "body{font-family:sans-serif;margin:2rem;max-width:70rem}\n"
        "table{border-collapse:collapse;margin:0.5rem 0}\n"
        "th,td{border:1px solid #ccc;padding:0.2rem 0.5rem;"
        "font-variant-numeric:tabular-nums}\n"
        "th{background:#f0f0f0}\n"
        "section{margin-bottom:3rem}\n"
        "</style>\n</head>\n<body>\n",
        "<h1>Figure artifacts</h1>\n",
        "<p>Deterministic CSV + Vega-Lite renderings of the registered "
        "figures (charts need the Vega CDN; the tables below are "
        "self-contained). Regenerate with <code>python -m repro.cli render "
        "... --out DIR</code>.</p>\n<nav><ul>\n",
    ]
    for figure in figures:
        parts.append(
            f'<li><a href="#{html.escape(figure.name)}">'
            f"{html.escape(figure.name)}</a> — "
            f"{html.escape(figure.description)}</li>\n"
        )
    parts.append("</ul></nav>\n")
    for figure in figures:
        name = html.escape(figure.name)
        rows = tables[figure.name]
        parts.append(f'<section id="{name}">\n')
        parts.append(f"<h2>{name} — {html.escape(figure.meta.title)}</h2>\n")
        parts.append(
            f'<p><a href="{name}.csv">{name}.csv</a> · '
            f'<a href="{name}.vl.json">{name}.vl.json</a> · '
            f"{len(rows)} row(s)</p>\n"
        )
        parts.append(f'<div id="vis-{name}"></div>\n')
        parts.append(
            f"<script>vegaEmbed('#vis-{name}', '{name}.vl.json')"
            ".catch(function(){});</script>\n"
        )
        parts.append(_html_table(rows))
        parts.append("</section>\n")
    parts.append("</body>\n</html>\n")
    return "".join(parts)


def _html_table(rows: List[Mapping[str, Any]]) -> str:
    if not rows:
        return "<p><em>no rows (empty source)</em></p>\n"
    flat = [flatten_row(row) for row in rows]
    columns: List[str] = sorted({name for row in flat for name in row})
    out: List[str] = ["<table>\n<tr>"]
    out.extend(f"<th>{html.escape(name)}</th>" for name in columns)
    out.append("</tr>\n")
    for row in flat[:_INDEX_MAX_ROWS]:
        out.append("<tr>")
        out.extend(
            f"<td>{html.escape(canonical_cell(row.get(name)))}</td>"
            for name in columns
        )
        out.append("</tr>\n")
    out.append("</table>\n")
    if len(flat) > _INDEX_MAX_ROWS:
        out.append(
            f"<p><em>first {_INDEX_MAX_ROWS} of {len(flat)} rows — "
            "full data in the CSV</em></p>\n"
        )
    return "".join(out)


# ---------------------------------------------------------------------------
# Optional matplotlib backend
# ---------------------------------------------------------------------------

def _render_pngs(
    figures: Sequence[RegisteredFigure],
    tables: Mapping[str, List[Mapping[str, Any]]],
    out_dir: str,
) -> tuple:
    """Best-effort raster plots; (written?, note when skipped)."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return False, "matplotlib is not installed; skipped PNG rendering"
    for figure in figures:
        flat = [flatten_row(row) for row in tables[figure.name]]
        meta = figure.meta
        fig, axes = plt.subplots(figsize=(6.4, 4.0))
        series: Dict[str, List[tuple]] = {}
        for row in flat:
            label = str(row.get(meta.series, "")) if meta.series else ""
            x, y = row.get(meta.x), row.get(meta.y)
            if x is None or y is None:
                continue
            series.setdefault(label, []).append((x, y))
        for label in sorted(series):
            xs, ys = zip(*series[label])
            if meta.mark == "bar":
                axes.bar([str(x) for x in xs], ys, label=label or None)
            else:
                axes.plot(xs, ys, marker="o", label=label or None)
        axes.set_title(meta.title)
        axes.set_xlabel(meta.x)
        axes.set_ylabel(meta.y)
        if meta.series:
            axes.legend(title=meta.series)
        fig.tight_layout()
        fig.savefig(os.path.join(out_dir, f"{figure.name}.png"))
        plt.close(fig)
    return True, None


def _write_text(path: str, content: str) -> None:
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(content)
