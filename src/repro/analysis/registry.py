"""Figure registry: name -> (plan family, chart metadata, row tabulator).

The ProjectScylla-style front door of the results-to-figures pipeline: one
mapping from figure name to everything needed to materialize its artifacts
(``repro.analysis.render`` does the writing).  Simulation-backed figures
name a ``FIGURE_PLANS`` family — their data is produced by the sweep
engine, so renders ride the persistent result cache and ``--jobs N``
fan-out unchanged; the ``perf`` figure instead reads the perf-history file
(:mod:`repro.analysis.perf`).

A *tabulator* turns a family's assembled result into a flat list of
mapping rows — the long-format table the canonical CSV and the Vega-Lite
encoding share.  Tabulators must be pure and deterministic: row order may
depend only on the result's content (which the sweep engine already
guarantees is bit-identical across cold/cached/parallel executions).

Registered figure names must be documented in ``docs/experiments.md``
("From runs to figures") — enforced by ``tools/check_docs.py`` via
``tests/docs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.analysis import perf as perf_dashboard
from repro.harness.figures import FIGURE_META, FIGURE_PLANS, ArtifactMeta

__all__ = ["RegisteredFigure", "REGISTERED_FIGURES", "UnknownFigureError"]


class UnknownFigureError(ValueError):
    """Asked to render a figure name the registry does not know."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown figure {name!r} (registered: {', '.join(REGISTERED_FIGURES)})"
        )


@dataclass(frozen=True)
class RegisteredFigure:
    """Everything the renderer needs for one figure.

    ``family`` is a ``FIGURE_PLANS`` key, or ``None`` for figures whose
    tabulator sources its own data (the perf dashboard).  For family-backed
    figures the tabulator receives the plan's assembled result; sourceless
    tabulators receive ``None``.  ``columns`` optionally pins the CSV
    schema (required for figures that can legitimately tabulate to zero
    rows, so the header survives).
    """

    name: str
    description: str
    meta: ArtifactMeta
    tabulate: Callable[[Any], List[Mapping[str, Any]]]
    family: Optional[str] = None
    columns: Optional[tuple] = None


# ---------------------------------------------------------------------------
# Tabulators — assembled result -> long-format rows
# ---------------------------------------------------------------------------

def _rows_fig10(result: Mapping[str, float]) -> List[Mapping[str, Any]]:
    """``{"idle_us": v, ...}`` -> one (scenario, fct_us) row per case."""
    return [
        {"scenario": label[: -len("_us")] if label.endswith("_us") else label,
         "fct_us": value}
        for label, value in result.items()
    ]


def _rows_fig11(result: List[Mapping[str, Any]]) -> List[Mapping[str, Any]]:
    """Already long-format: (initial_window, throughput_gbps) rows."""
    return list(result)


def _rows_fig12(result: Mapping[int, Mapping[str, float]]) -> List[Mapping[str, Any]]:
    """``{packet_bytes: {stat: value}}`` -> one row per packet size."""
    return [
        {"packet_bytes": size, **result[size]} for size in sorted(result)
    ]


def _rows_fig13(result: List[Mapping[str, Any]]) -> List[Mapping[str, Any]]:
    """Wide (perfect_us, experimental_us) rows -> long (pacer, fct_us) rows."""
    rows: List[Mapping[str, Any]] = []
    for entry in result:
        rows.append({"flow_kb": entry["flow_kb"], "pacer": "perfect",
                     "fct_us": entry["perfect_us"]})
        rows.append({"flow_kb": entry["flow_kb"], "pacer": "experimental",
                     "fct_us": entry["experimental_us"]})
    return rows


def _rows_fig16(result: List[Mapping[str, Any]]) -> List[Mapping[str, Any]]:
    """Wide per-protocol columns -> long (senders, protocol, completion_ms).

    The ``ideal_ms`` bound becomes the pseudo-protocol ``ideal`` so the
    chart carries the paper's reference line as just another series.
    """
    rows: List[Mapping[str, Any]] = []
    for entry in result:
        senders = entry["senders"]
        for key in sorted(entry):
            if key == "senders":
                continue
            protocol = "ideal" if key == "ideal_ms" else key
            rows.append({"senders": senders, "protocol": protocol,
                         "completion_ms": entry[key]})
    return rows


def _rows_load_fct(result: List[Mapping[str, Any]]) -> List[Mapping[str, Any]]:
    """One row per (load, protocol); nested slowdown stats flatten to
    dotted columns (``slowdown.all.p99``) in the canonical CSV layer."""
    return list(result)


def _rows_perf(_result: Any) -> List[Mapping[str, Any]]:
    """Sourceless: read the perf history (empty rows on a fresh clone)."""
    return perf_dashboard.trajectory_rows()


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

def _family_figure(
    family: str, description: str, tabulate: Callable[[Any], List[Mapping[str, Any]]]
) -> RegisteredFigure:
    if family not in FIGURE_PLANS:  # pragma: no cover - registration bug
        raise KeyError(f"{family!r} is not a FIGURE_PLANS family")
    return RegisteredFigure(
        name=family,
        description=description,
        meta=FIGURE_META[family],
        tabulate=tabulate,
        family=family,
    )


#: figure name -> registration, in render order of ``render`` with no
#: arguments.  Family-backed names are deliberately identical to their
#: ``FIGURE_PLANS`` key so ``repro.cli fig16`` and ``repro.cli render
#: fig16`` always talk about the same experiment.
REGISTERED_FIGURES: Dict[str, RegisteredFigure] = {
    figure.name: figure
    for figure in (
        _family_figure(
            "fig10", "short-flow FCT: idle vs prioritized vs not", _rows_fig10
        ),
        _family_figure(
            "fig11", "throughput vs initial window", _rows_fig11
        ),
        _family_figure(
            "fig12", "pull-spacing percentiles per packet size", _rows_fig12
        ),
        _family_figure(
            "fig13", "incast FCT, perfect vs jittered pulls", _rows_fig13
        ),
        _family_figure(
            "fig16", "incast scaling across protocols", _rows_fig16
        ),
        _family_figure(
            "load_fct", "size-binned FCT slowdowns vs load", _rows_load_fct
        ),
        RegisteredFigure(
            name="perf",
            description="events/sec trajectory per perf scenario",
            meta=perf_dashboard.PERF_META,
            tabulate=_rows_perf,
            family=None,
            columns=perf_dashboard.PERF_COLUMNS,
        ),
        RegisteredFigure(
            name="perf_allocs",
            description="allocations/event trajectory per perf scenario",
            meta=perf_dashboard.PERF_ALLOCS_META,
            tabulate=_rows_perf,
            family=None,
            columns=perf_dashboard.PERF_COLUMNS,
        ),
    )
}
