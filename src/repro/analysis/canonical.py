"""Canonical serialization for figure artifacts (CSV and JSON).

Every artifact the :mod:`repro.analysis` layer writes — per-figure CSVs,
Vega-Lite specs, the HTML index, perf-history records — goes through the
functions here, so a cold serial render, a cache-served render and a
``--jobs N`` parallel render produce **byte-identical** files.  This
extends the sweep engine's determinism contract (results are normalized
through one tagged JSON codec, see :mod:`repro.harness.sweep`) from result
*values* to result *files*, which is what makes golden-artifact testing
(``tests/analysis/test_golden.py``) and ``diff -r``-based CI checks
possible.

Canonical form:

* **floats** use Python's shortest round-trip ``repr`` (stable across
  CPython ≥ 3.1 and platforms for IEEE-754 doubles); non-finite values
  spell out as ``NaN`` / ``Infinity`` / ``-Infinity``, which both
  ``float()`` and the sweep codec's JSON layer accept, so values round-trip
  without drift;
* **CSV columns** are the sorted union of the (flattened) row keys — key
  *insertion* order, which varies with how a result was assembled, can
  never leak into the bytes;
* **nested mappings** flatten into dotted columns (``slowdown.all.p99``);
  lists/tuples serialize as canonical JSON in a single cell;
* **None** renders as the empty cell — the CSV face of an absent value
  (e.g. a percentile of an empty measurement bin);
* **JSON** is ``sort_keys=True`` with either compact or 2-space-indented
  separators, LF line endings, trailing newline.
"""

from __future__ import annotations

import io
import json
import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "canonical_float",
    "canonical_cell",
    "canonical_json",
    "flatten_row",
    "rows_to_csv",
]


def canonical_float(value: float) -> str:
    """Shortest round-trip decimal form; NaN/±Infinity spelled out.

    ``float(canonical_float(x))`` recovers ``x`` exactly (bit-for-bit) for
    every finite double, and maps the non-finite spellings back to their
    originals — asserted property-style in ``tests/analysis``.
    """
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return repr(value)


def canonical_cell(value: Any) -> str:
    """One CSV cell: deterministic text for any codec-friendly value."""
    if value is None:
        return ""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return "true" if value else "false"
    if isinstance(value, float):
        return canonical_float(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return canonical_json(list(value))
    if isinstance(value, Mapping):
        return canonical_json(value)
    raise TypeError(f"cannot canonicalize a {type(value).__name__} cell")


def canonical_json(value: Any, indent: Optional[int] = None) -> str:
    """Sorted-key JSON with canonical float handling (no trailing newline).

    Uses the stdlib encoder, whose float path is ``repr`` — the same
    shortest-round-trip form as :func:`canonical_float` — and which emits
    ``NaN`` / ``Infinity`` literals for non-finite values, matching the
    sweep codec's behaviour, so a value that came out of the result cache
    serializes identically to one computed in-process.
    """
    separators = (",", ": ") if indent else (",", ":")
    return json.dumps(value, sort_keys=True, indent=indent, separators=separators)


def flatten_row(row: Mapping[str, Any], separator: str = ".") -> Dict[str, Any]:
    """Flatten nested mappings into dotted columns, leaves untouched.

    ``{"slowdown": {"all": {"p99": 3.2}}}`` becomes
    ``{"slowdown.all.p99": 3.2}``.  Non-string keys (e.g. the int packet
    sizes some results are keyed by) are stringified through
    :func:`canonical_cell`.  Idempotent: flattening a flat row is a no-op.
    """
    flat: Dict[str, Any] = {}
    for key, value in row.items():
        name = key if isinstance(key, str) else canonical_cell(key)
        if isinstance(value, Mapping):
            for subkey, subvalue in flatten_row(value, separator).items():
                flat[f"{name}{separator}{subkey}"] = subvalue
        else:
            flat[name] = value
    return flat


def _quote(cell: str) -> str:
    if any(ch in cell for ch in (",", '"', "\n", "\r")):
        return '"' + cell.replace('"', '""') + '"'
    return cell


def rows_to_csv(
    rows: Iterable[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render *rows* as a canonical CSV string (LF lines, trailing newline).

    Rows are flattened first; the header is *columns* when given (for
    fixed-schema artifacts that must keep their header even when empty),
    otherwise the sorted union of every row's flattened keys.  Cells absent
    from a row render empty, like ``None``.
    """
    flat_rows: List[Dict[str, Any]] = [flatten_row(row) for row in rows]
    if columns is None:
        names: set = set()
        for row in flat_rows:
            names.update(row)
        columns = sorted(names)
    out = io.StringIO()
    out.write(",".join(_quote(name) for name in columns) + "\n")
    for row in flat_rows:
        out.write(
            ",".join(_quote(canonical_cell(row.get(name))) for name in columns) + "\n"
        )
    return out.getvalue()
