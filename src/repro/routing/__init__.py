"""Path selection policies.

NDP itself does source-routed per-packet spraying (implemented by
:class:`repro.core.path_manager.PathManager`); the helpers here cover the
*other* policies the paper compares against:

* per-flow ECMP — what single-path TCP/DCTCP/DCQCN get from commodity
  switches: one hash-chosen path per flow, so two long flows can collide on
  a core link (the 40% throughput loss cited in §2.2);
* per-packet random ECMP — switches choosing a random next hop per packet,
  the baseline NDP's sender-side permutation is compared to in §3.1.1.
"""

from repro.routing.ecmp import (
    EcmpFlowSelector,
    RandomPacketSelector,
    ecmp_path,
    flow_hash,
)

__all__ = [
    "EcmpFlowSelector",
    "RandomPacketSelector",
    "ecmp_path",
    "flow_hash",
]
