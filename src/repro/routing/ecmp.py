"""ECMP-style path selection.

The simulator models routing by letting the *sender* attach an explicit
route to each packet, so "switch ECMP" becomes a deterministic hash of the
flow identifier over the available paths (per-flow ECMP) or a uniformly
random choice per packet (per-packet ECMP).  Both reproduce the collision
behaviour of the real mechanisms without modelling per-switch hash tables.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence

from repro.sim.packet import Route


def flow_hash(flow_id: int, salt: int = 0) -> int:
    """A stable, well-mixed hash of a flow identifier.

    Python's builtin ``hash`` of an int is the identity, which would make
    "ECMP" assign consecutive flow ids to consecutive paths and hide the
    collisions the paper attributes to ECMP.  A few bytes of SHA-1 give the
    uniform spread real switch hash functions aim for.
    """
    digest = hashlib.sha1(f"{flow_id}:{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def ecmp_path(paths: Sequence[Route], flow_id: int, salt: int = 0) -> Route:
    """Pick the single path a per-flow-ECMP fabric would give this flow."""
    if not paths:
        raise ValueError("ecmp_path needs at least one path")
    return paths[flow_hash(flow_id, salt) % len(paths)]


class EcmpFlowSelector:
    """Per-flow ECMP: every flow gets one fixed, hash-chosen path."""

    def __init__(self, paths: Sequence[Route], salt: int = 0) -> None:
        if not paths:
            raise ValueError("EcmpFlowSelector needs at least one path")
        self.paths = list(paths)
        self.salt = salt

    def path_for_flow(self, flow_id: int) -> Route:
        """The path assigned to *flow_id* (stable across calls)."""
        return ecmp_path(self.paths, flow_id, self.salt)

    def update_paths(self, paths: Sequence[Route]) -> None:
        """Re-hash over a new path set (link failed or recovered).

        Models switches recomputing their ECMP groups: *subsequent* flows
        hash over the surviving paths, while flows already assigned keep the
        route they were given — per-flow ECMP does not move live flows,
        which is exactly the stuck-on-a-dead-path behaviour the paper's
        failure experiments demonstrate.
        """
        if not paths:
            raise ValueError("EcmpFlowSelector needs at least one path")
        self.paths = list(paths)


class RandomPacketSelector:
    """Per-packet ECMP: a uniformly random path for every packet."""

    def __init__(self, paths: Sequence[Route], rng: Optional[random.Random] = None) -> None:
        if not paths:
            raise ValueError("RandomPacketSelector needs at least one path")
        self.paths = list(paths)
        self.rng = rng if rng is not None else random.Random(0)

    def next_route(self) -> Route:
        """A fresh random path (API-compatible with PathManager)."""
        return self.rng.choice(self.paths)

    def update_paths(self, paths: Sequence[Route]) -> None:
        """Re-draw over a new path set (link failed or recovered).

        The RNG stream is left untouched, so two selectors with identical
        seeds that receive identical update sequences keep making identical
        choices — the determinism contract of every seeded component.
        """
        if not paths:
            raise ValueError("RandomPacketSelector needs at least one path")
        self.paths = list(paths)
