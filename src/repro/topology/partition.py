"""Topology partitioning for sharded (parallel) simulation.

A *partition* assigns every topology node to exactly one shard.  The shard
harness (:mod:`repro.harness.shard`) replicates the full topology in every
worker but only activates the elements its shard owns; traffic crossing a
*boundary link* — a directed link whose endpoints live in different shards —
is marshalled between workers at conservative window barriers.

The conservative lookahead of a partition is the minimum propagation delay
over its boundary links: a packet leaving shard A at time ``t`` cannot
arrive in shard B before ``t + min_boundary_delay_ps``, so advancing every
shard in lockstep windows of that length guarantees no shard ever receives
a packet in its past.

Two concrete partitioners are provided:

* :func:`partition_fattree` — the paper-scale case: pods map to shards
  (contiguous pod blocks), core switches round-robin across shards.  Every
  aggregation↔core link whose endpoints land in different shards becomes a
  boundary link.
* :func:`partition_pairs` — the degenerate case for
  :class:`~repro.topology.simple.IndependentPairsTopology`: each cable pair
  stays whole, pairs round-robin across shards, and the boundary set is
  empty (pure scaling, no cross-shard traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.topology.base import LinkRecord, Topology
from repro.topology.fattree import FatTreeTopology
from repro.topology.simple import IndependentPairsTopology

BoundaryKey = Tuple[str, str]


@dataclass(frozen=True)
class ShardPartition:
    """An immutable node→shard assignment for one topology.

    ``node_owner`` covers every node (hosts and switches); ``host_owner``
    is the host-index view used to decide which flow endpoints a shard
    activates.  Both are derived deterministically from the topology and
    the shard count, so every worker reconstructs the identical partition.
    """

    num_shards: int
    node_owner: Dict[str, int] = field(hash=False)
    host_owner: Dict[int, int] = field(hash=False)

    def owner_of_node(self, node: str) -> int:
        return self.node_owner[node]

    def owner_of_host(self, host: int) -> int:
        return self.host_owner[host]


def partition_fattree(topology: FatTreeTopology, num_shards: int) -> ShardPartition:
    """Pod-partition a fat-tree: contiguous pod blocks, cores round-robin.

    *num_shards* must divide the pod count so every shard owns the same
    number of pods (and therefore the same host share).
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    if topology.pods % num_shards != 0:
        raise ValueError(
            f"{num_shards} shards do not evenly divide {topology.pods} pods"
        )
    pods_per_shard = topology.pods // num_shards
    node_owner: Dict[str, int] = {}
    host_owner: Dict[int, int] = {}
    for host in range(topology.host_count):
        shard = topology.host_pod(host) // pods_per_shard
        host_owner[host] = shard
        node_owner[topology.host_name(host)] = shard
    for pod in range(topology.pods):
        shard = pod // pods_per_shard
        for tor in range(topology.tors_per_pod):
            node_owner[topology._tor_name(pod, tor)] = shard
        for agg in range(topology.aggs_per_pod):
            node_owner[topology._agg_name(pod, agg)] = shard
    for core in range(topology.core_count):
        node_owner[topology._core_name(core)] = core % num_shards
    return ShardPartition(num_shards, node_owner, host_owner)


def partition_pairs(
    topology: IndependentPairsTopology, num_shards: int
) -> ShardPartition:
    """Round-robin whole cable pairs across shards (no boundary links)."""
    if num_shards < 1:
        raise ValueError("need at least one shard")
    if num_shards > topology.pairs:
        raise ValueError(
            f"{num_shards} shards but only {topology.pairs} host pairs"
        )
    node_owner: Dict[str, int] = {}
    host_owner: Dict[int, int] = {}
    for pair in range(topology.pairs):
        shard = pair % num_shards
        for host in (2 * pair, 2 * pair + 1):
            host_owner[host] = shard
            node_owner[topology.host_name(host)] = shard
    return ShardPartition(num_shards, node_owner, host_owner)


def partition_topology(topology: Topology, num_shards: int) -> ShardPartition:
    """Dispatch to the partitioner matching *topology*'s concrete type."""
    if isinstance(topology, FatTreeTopology):
        return partition_fattree(topology, num_shards)
    if isinstance(topology, IndependentPairsTopology):
        return partition_pairs(topology, num_shards)
    raise TypeError(
        f"no partitioner for topology type {type(topology).__name__}"
    )


def boundary_links(
    topology: Topology, partition: ShardPartition
) -> List[Tuple[BoundaryKey, LinkRecord]]:
    """Directed links whose src and dst nodes live in different shards.

    Returned in ``topology.links`` insertion order, which is construction
    order and therefore identical in every worker.
    """
    owner = partition.node_owner
    out: List[Tuple[BoundaryKey, LinkRecord]] = []
    for key, record in topology.links.items():
        src, dst = key
        if owner[src] != owner[dst]:
            out.append((key, record))
    return out


def min_boundary_delay_ps(
    boundary: List[Tuple[BoundaryKey, LinkRecord]]
) -> int:
    """The conservative lookahead: the smallest boundary propagation delay.

    Raises if any boundary link has zero delay (zero lookahead admits no
    conservative window) — and returns 0 for an *empty* boundary, where
    the caller may run a single window spanning the whole horizon.
    """
    if not boundary:
        return 0
    delay = min(record.delay_ps for _, record in boundary)
    if delay <= 0:
        raise ValueError(
            "boundary link with non-positive propagation delay: conservative "
            "windowing requires lookahead > 0"
        )
    return delay
