"""Two-tier leaf-spine topology (the paper's hardware testbed).

The testbed of §5 is an "8-server two-tier FatTree built from six four-port
switches": four leaf (ToR) switches with two servers each, and two spine
switches each connected to every leaf.  :class:`LeafSpineTopology`
generalizes this to any number of leaves, spines and hosts per leaf.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.eventlist import EventList
from repro.sim.units import DEFAULT_LINK_RATE_BPS, microseconds
from repro.topology.base import QueueFactory, Topology
from repro.topology.route_table import NodePath


class LeafSpineTopology(Topology):
    """A folded two-tier Clos: hosts → leaf switches → spine switches."""

    def __init__(
        self,
        eventlist: EventList,
        leaves: int = 4,
        spines: int = 2,
        hosts_per_leaf: int = 2,
        link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
        link_delay_ps: int = microseconds(1),
        oversubscription: float = 1.0,
        queue_factory: Optional[QueueFactory] = None,
        host_nic_factory: Optional[QueueFactory] = None,
    ) -> None:
        if leaves < 1 or spines < 1 or hosts_per_leaf < 1:
            raise ValueError("leaves, spines and hosts_per_leaf must be positive")
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1")
        super().__init__(
            eventlist,
            link_rate_bps=link_rate_bps,
            link_delay_ps=link_delay_ps,
            queue_factory=queue_factory,
            host_nic_factory=host_nic_factory,
        )
        self.leaves = leaves
        self.spines = spines
        self.hosts_per_leaf = hosts_per_leaf
        self.oversubscription = oversubscription
        self.host_count = leaves * hosts_per_leaf
        self._build()

    def _build(self) -> None:
        uplink_rate = int(self.link_rate_bps / self.oversubscription)
        for host in range(self.host_count):
            leaf = self.leaf_of_host(host)
            host_node = self.host_name(host)
            self.add_link(host_node, leaf, is_host_uplink=True)
            self.add_link(leaf, host_node)
        for leaf_index in range(self.leaves):
            leaf = self._leaf_name(leaf_index)
            for spine_index in range(self.spines):
                spine = self._spine_name(spine_index)
                self.add_link(leaf, spine, rate_bps=uplink_rate)
                self.add_link(spine, leaf, rate_bps=uplink_rate)

    def _leaf_name(self, leaf_index: int) -> str:
        return f"leaf{leaf_index}"

    def _spine_name(self, spine_index: int) -> str:
        return f"spine{spine_index}"

    def leaf_of_host(self, host: int) -> str:
        """Node name of the leaf (ToR) switch serving *host*."""
        return self._leaf_name(host // self.hosts_per_leaf)

    # host-locality helpers, mirroring FatTreeTopology so failure experiments
    # can target "the ToR of host h" without caring which topology is under
    # them (a leaf *is* the ToR tier here)

    def tor_of_host(self, host: int) -> str:
        """Node name of the ToR (leaf) switch serving *host* (FatTree parity)."""
        return self.leaf_of_host(host)

    def host_tor_index(self, host: int) -> int:
        """Index of the leaf (ToR) switch *host* attaches to."""
        return host // self.hosts_per_leaf

    def hosts_of_tor(self, leaf_index: int) -> List[int]:
        """Host identifiers attached to one leaf (ToR) switch."""
        first = leaf_index * self.hosts_per_leaf
        return list(range(first, first + self.hosts_per_leaf))

    def leaf_spine_pair(self, leaf_index: int, spine_index: int) -> Tuple[str, str]:
        """``(leaf_node, spine_node)`` endpoints of one uplink cable."""
        if not 0 <= leaf_index < self.leaves:
            raise ValueError(f"leaf index must be in [0, {self.leaves}), got {leaf_index}")
        if not 0 <= spine_index < self.spines:
            raise ValueError(f"spine index must be in [0, {self.spines}), got {spine_index}")
        return self._leaf_name(leaf_index), self._spine_name(spine_index)

    def node_paths(self, src_host: int, dst_host: int) -> List[NodePath]:
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        src_node = self.host_name(src_host)
        dst_node = self.host_name(dst_host)
        src_leaf = self.leaf_of_host(src_host)
        dst_leaf = self.leaf_of_host(dst_host)
        if src_leaf == dst_leaf:
            return [(src_node, src_leaf, dst_node)]
        return [
            (src_node, src_leaf, self._spine_name(spine), dst_leaf, dst_node)
            for spine in range(self.spines)
        ]
