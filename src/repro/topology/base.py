"""Common machinery shared by every topology.

A topology is a directed graph of named nodes (``host3``, ``tor1``,
``agg0``, ``core2``).  Each directed edge is a *link*: an output-port queue
(which serializes at the link rate and implements the experiment's queueing
discipline) followed by a propagation :class:`~repro.sim.pipe.Pipe`.

Topologies enumerate paths *symbolically*: :meth:`Topology.node_paths`
(implemented by subclasses) lists the node-name tuples from a source host to
a destination host, and :meth:`Topology.get_paths` resolves them through the
per-topology :class:`~repro.topology.route_table.RouteTable` into one
:class:`~repro.sim.packet.Route` per *surviving* physical path — links that
have been failed through the link-state API below are pruned.  Routes
contain only fabric elements; the connection helpers in
:mod:`repro.harness` append the destination protocol endpoint.

The link-state API (:meth:`Topology.fail_link`, :meth:`Topology.recover_link`,
:meth:`Topology.set_link_rate`, :meth:`Topology.set_link_delay_ps`) is the
single mutation point for fabric dynamics: every change is applied to the
underlying queue/pipe, versioned for the route table, and broadcast to
subscribers (:meth:`Topology.subscribe_link_state`) as a :class:`LinkStateEvent`
— which is how NDP path managers and the baselines' ECMP selectors learn to
re-rank, prune, and re-hash mid-run.  Scheduling deterministic link events
on the simulation clock is the job of
:class:`~repro.topology.dynamics.FabricController`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.eventlist import EventList
from repro.sim.packet import Route
from repro.sim.pipe import Pipe
from repro.sim.queues import BaseQueue, DropTailQueue, LosslessQueue
from repro.sim.units import DEFAULT_LINK_RATE_BPS, JUMBO_MTU_BYTES, microseconds
from repro.topology.route_table import NodePath, RouteTable

#: signature of the callables used to create per-port queues
QueueFactory = Callable[[EventList, int, str], BaseQueue]


def default_queue_factory(
    eventlist: EventList, rate_bps: int, name: str
) -> DropTailQueue:
    """A 100-MTU drop-tail queue; the fallback when no factory is supplied."""
    return DropTailQueue(eventlist, rate_bps, 100 * JUMBO_MTU_BYTES, name=name)


def host_queue_factory(eventlist: EventList, rate_bps: int, name: str) -> DropTailQueue:
    """The default host NIC queue: deep enough to hold any initial window."""
    return DropTailQueue(eventlist, rate_bps, 512 * JUMBO_MTU_BYTES, name=name)


@dataclass
class LinkRecord:
    """One directed link: who it connects, its elements, and its live state."""

    src_node: str
    dst_node: str
    queue: BaseQueue
    pipe: Pipe
    #: False while the link is failed (routes through it are pruned)
    up: bool = True
    #: current service rate; diverges from ``nominal_rate_bps`` when degraded
    rate_bps: int = 0
    #: the rate the link was built with
    nominal_rate_bps: int = 0
    #: current one-way propagation delay
    delay_ps: int = 0

    @property
    def degraded(self) -> bool:
        """True while the link runs below its construction-time rate."""
        return self.rate_bps < self.nominal_rate_bps

    def elements(self) -> Tuple[BaseQueue, Pipe]:
        """The route elements a packet traverses to cross this link."""
        return (self.queue, self.pipe)


@dataclass(frozen=True)
class LinkStateEvent:
    """One applied link-state change, delivered to topology subscribers."""

    #: "fail" | "recover" | "rate" | "delay"
    kind: str
    src_node: str
    dst_node: str
    #: simulated time the change was applied
    time_ps: int
    #: new service rate ("rate" events only)
    rate_bps: Optional[int] = None
    #: new propagation delay ("delay" events only)
    delay_ps: Optional[int] = None


class Topology:
    """Base class: a named-node graph of links plus path enumeration."""

    def __init__(
        self,
        eventlist: EventList,
        link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
        link_delay_ps: int = microseconds(1),
        queue_factory: Optional[QueueFactory] = None,
        host_nic_factory: Optional[QueueFactory] = None,
    ) -> None:
        self.eventlist = eventlist
        self.link_rate_bps = link_rate_bps
        self.link_delay_ps = link_delay_ps
        self.queue_factory: QueueFactory = queue_factory or default_queue_factory
        self.host_nic_factory: QueueFactory = host_nic_factory or host_queue_factory
        self.links: Dict[Tuple[str, str], LinkRecord] = {}
        self.host_count = 0
        #: resolves symbolic node paths to routes against the live link state
        self.route_table = RouteTable(self)
        #: bumped on changes that alter the surviving path set (fail/recover)
        self.route_version = 0
        #: bumped on *every* link-state change (rate/delay included)
        self.link_state_version = 0
        self._link_subscribers: List[Callable[[LinkStateEvent], None]] = []

    # --- construction helpers ----------------------------------------------------

    def add_link(
        self,
        src_node: str,
        dst_node: str,
        rate_bps: Optional[int] = None,
        delay_ps: Optional[int] = None,
        is_host_uplink: bool = False,
    ) -> LinkRecord:
        """Create the queue+pipe pair for the directed link *src*→*dst*."""
        if (src_node, dst_node) in self.links:
            raise ValueError(f"link {src_node}->{dst_node} already exists")
        rate = rate_bps if rate_bps is not None else self.link_rate_bps
        delay = delay_ps if delay_ps is not None else self.link_delay_ps
        factory = self.host_nic_factory if is_host_uplink else self.queue_factory
        queue = factory(self.eventlist, rate, f"{src_node}->{dst_node}")
        pipe = Pipe(self.eventlist, delay, name=f"pipe:{src_node}->{dst_node}")
        record = LinkRecord(
            src_node, dst_node, queue, pipe,
            rate_bps=rate, nominal_rate_bps=rate, delay_ps=delay,
        )
        self.links[(src_node, dst_node)] = record
        return record

    def link(self, src_node: str, dst_node: str) -> LinkRecord:
        """Look up the directed link *src*→*dst* (clear error when absent)."""
        return self._require_link(src_node, dst_node)

    def queue(self, src_node: str, dst_node: str) -> BaseQueue:
        """The output queue of the directed link *src*→*dst*."""
        return self._require_link(src_node, dst_node).queue

    # --- link-state API (fabric dynamics) ----------------------------------------

    def _require_link(self, src_node: str, dst_node: str) -> LinkRecord:
        record = self.links.get((src_node, dst_node))
        if record is None:
            raise KeyError(
                f"no link {src_node}->{dst_node} in {self.__class__.__name__} "
                f"({len(self.links)} directed links; node names look like "
                f"{next(iter(self.links))[0]!r} -> {next(iter(self.links))[1]!r})"
                if self.links
                else f"no link {src_node}->{dst_node}: {self.__class__.__name__} "
                f"has no links yet"
            )
        return record

    def _link_state_changed(self, event: LinkStateEvent, reroutes: bool) -> None:
        """Version the change and broadcast it to subscribers (post-apply)."""
        self.link_state_version += 1
        if reroutes:
            self.route_version += 1
        for callback in list(self._link_subscribers):
            callback(event)

    def fail_link(self, src_node: str, dst_node: str) -> None:
        """Take the directed link *src*→*dst* down.

        The link's queued backlog and the packet being serialized are lost
        (dropped, counted in the queue's drop statistics); packets already on
        the wire in the downstream pipe are delivered.  Routes through the
        link are pruned from every subsequent :meth:`get_paths` answer and
        subscribers are notified.  Idempotent.
        """
        record = self._require_link(src_node, dst_node)
        if not record.up:
            return
        record.up = False
        record.queue.sever()
        self._link_state_changed(
            LinkStateEvent("fail", src_node, dst_node, self.eventlist.now()),
            reroutes=True,
        )

    def recover_link(self, src_node: str, dst_node: str) -> None:
        """Bring a failed link back up (routes through it reappear).  Idempotent."""
        record = self._require_link(src_node, dst_node)
        if record.up:
            return
        record.up = True
        record.queue.restore()
        self._link_state_changed(
            LinkStateEvent("recover", src_node, dst_node, self.eventlist.now()),
            reroutes=True,
        )

    def fail_link_pair(self, node_a: str, node_b: str) -> None:
        """Cut the cable: fail both directions between two nodes."""
        self.fail_link(node_a, node_b)
        self.fail_link(node_b, node_a)

    def recover_link_pair(self, node_a: str, node_b: str) -> None:
        """Restore both directions between two nodes."""
        self.recover_link(node_a, node_b)
        self.recover_link(node_b, node_a)

    def set_link_rate(self, src_node: str, dst_node: str, rate_bps: int) -> None:
        """Re-rate a link mid-run (degradation / renegotiation, Figure 22).

        Applied through :meth:`~repro.sim.queues.BaseQueue.set_service_rate`,
        which also refreshes the queue's memoized serialization times — the
        previous in-place mutation left them at the old rate.  Raises a clear
        ``KeyError`` for unknown links and ``ValueError`` for a non-positive
        rate; subscribers receive a ``"rate"`` event (the path set is
        unchanged, so nothing is re-routed — reacting to a degraded-but-alive
        link is the job of the NDP path scoreboard).
        """
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        record = self._require_link(src_node, dst_node)
        record.queue.set_service_rate(rate_bps)
        record.rate_bps = rate_bps
        self._link_state_changed(
            LinkStateEvent(
                "rate", src_node, dst_node, self.eventlist.now(), rate_bps=rate_bps
            ),
            reroutes=False,
        )

    def set_link_delay_ps(self, src_node: str, dst_node: str, delay_ps: int) -> None:
        """Change a link's propagation delay mid-run (companion of rate changes).

        Packets already in flight keep the delay they departed with.  Raises
        ``KeyError`` for unknown links and ``ValueError`` for a negative
        delay.
        """
        if delay_ps < 0:
            raise ValueError(f"link delay must be non-negative, got {delay_ps}")
        record = self._require_link(src_node, dst_node)
        record.pipe.set_delay_ps(delay_ps)
        record.delay_ps = delay_ps
        self._link_state_changed(
            LinkStateEvent(
                "delay", src_node, dst_node, self.eventlist.now(), delay_ps=delay_ps
            ),
            reroutes=False,
        )

    def link_is_up(self, src_node: str, dst_node: str) -> bool:
        """True while the directed link *src*→*dst* is not failed."""
        return self._require_link(src_node, dst_node).up

    def failed_links(self) -> List[Tuple[str, str]]:
        """Every directed link currently down, in insertion order."""
        return [key for key, record in self.links.items() if not record.up]

    def subscribe_link_state(
        self, callback: Callable[[LinkStateEvent], None]
    ) -> Callable[[LinkStateEvent], None]:
        """Register *callback* for link-state events; returns it for unsubscribe."""
        self._link_subscribers.append(callback)
        return callback

    def unsubscribe_link_state(self, callback: Callable[[LinkStateEvent], None]) -> None:
        """Remove a previously registered link-state callback (no-op if absent)."""
        try:
            self._link_subscribers.remove(callback)
        except ValueError:
            pass

    def route_from_nodes(self, nodes: Sequence[str], path_id: int = 0) -> Route:
        """Build a route from an explicit node path ``[src_host, ..., dst_host]``.

        Raw access for tests and ad-hoc wiring: resolves through the route
        table without link-state pruning or caching (a deliberately built
        route over a failed link is the caller's business).
        """
        return self.route_table.resolve(nodes, path_id=path_id)

    # --- queries -----------------------------------------------------------------

    def host_name(self, host: int) -> str:
        """Canonical node name of host number *host*."""
        return f"host{host}"

    def hosts(self) -> List[int]:
        """All host identifiers in the topology."""
        return list(range(self.host_count))

    def node_paths(self, src_host: int, dst_host: int) -> List[NodePath]:
        """Symbolic enumeration of every physical path (subclass responsibility).

        Returns node-name tuples ``(src_host_node, ..., dst_host_node)``;
        the ``path_id`` of the resolved route is the tuple's position in
        this list, so implementations must enumerate in a stable order.
        """
        raise NotImplementedError

    def get_paths(self, src_host: int, dst_host: int) -> List[Route]:
        """Every *surviving* path from *src_host* to *dst_host* as a route.

        Resolved through the :class:`~repro.topology.route_table.RouteTable`:
        paths crossing a failed link are pruned (path ids of the survivors
        are unchanged), and the result may be empty under a partition.
        """
        return self.route_table.routes(src_host, dst_host)

    def path_count(self, src_host: int, dst_host: int) -> int:
        """Number of distinct surviving paths between two hosts."""
        return len(self.get_paths(src_host, dst_host))

    def tor_of_host(self, host: int) -> str:
        """Node name of the first-hop (ToR) switch serving *host*.

        The generic implementation follows the host's uplink; subclasses
        with an addressing scheme override it with O(1) arithmetic.
        """
        host_node = self.host_name(host)
        for (src, dst) in self.links:
            if src == host_node:
                return dst
        raise KeyError(f"host {host} has no uplink in this topology")

    def uplinks_of_node(self, node: str) -> List[Tuple[str, str]]:
        """Directed non-host-facing links out of *node* (e.g. ToR uplinks).

        Lets failure experiments target "the uplinks of host h's ToR"
        uniformly across topologies:
        ``topology.uplinks_of_node(topology.tor_of_host(h))``.
        """
        return [
            (src, dst)
            for (src, dst) in self.links
            if src == node and not dst.startswith("host")
        ]

    def all_queues(self) -> Iterable[BaseQueue]:
        """Every queue in the fabric (for statistics sweeps)."""
        return (record.queue for record in self.links.values())

    def fabric_queues(self) -> Iterable[BaseQueue]:
        """Every queue except host NIC queues (i.e. switch output ports)."""
        return (
            record.queue
            for record in self.links.values()
            if not record.src_node.startswith("host")
        )

    def host_nic_queue(self, host: int) -> BaseQueue:
        """The NIC (uplink) queue of *host* — the first element of its routes."""
        host_node = self.host_name(host)
        for (src, _dst), record in self.links.items():
            if src == host_node:
                return record.queue
        raise KeyError(f"host {host} has no uplink in this topology")

    # --- PFC wiring ----------------------------------------------------------------

    def wire_pfc(self) -> int:
        """Register pause relationships between adjacent lossless queues.

        For every :class:`~repro.sim.queues.LosslessQueue` on a link A→B, the
        queues that feed node A (all links X→A) are registered as upstream —
        they are the ports that get paused when A→B congests.  Returns the
        number of pause relationships created; topologies whose queues are
        not lossless are unaffected.
        """
        inbound: Dict[str, List[BaseQueue]] = {}
        for (src, dst), record in self.links.items():
            inbound.setdefault(dst, []).append(record.queue)
        wired = 0
        for (src, _dst), record in self.links.items():
            queue = record.queue
            if isinstance(queue, LosslessQueue):
                feeders = inbound.get(src, [])
                if feeders:
                    queue.register_upstream(*feeders)
                    wired += len(feeders)
        return wired

    # --- diagnostics ------------------------------------------------------------------

    def total_trimmed(self) -> int:
        """Total packets trimmed anywhere in the fabric."""
        return sum(q.stats.packets_trimmed for q in self.all_queues())

    def total_dropped(self) -> int:
        """Total packets dropped anywhere in the fabric."""
        return sum(q.stats.packets_dropped for q in self.all_queues())

    def describe(self) -> str:
        """One-line summary used by examples and logs."""
        return (
            f"{self.__class__.__name__}: {self.host_count} hosts, "
            f"{len(self.links)} directed links @ {self.link_rate_bps / 1e9:.0f} Gb/s"
        )
