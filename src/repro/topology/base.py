"""Common machinery shared by every topology.

A topology is a directed graph of named nodes (``host3``, ``tor1``,
``agg0``, ``core2``).  Each directed edge is a *link*: an output-port queue
(which serializes at the link rate and implements the experiment's queueing
discipline) followed by a propagation :class:`~repro.sim.pipe.Pipe`.

Topologies answer :meth:`Topology.get_paths` with one
:class:`~repro.sim.packet.Route` per physical path from a source host to a
destination host.  Routes contain only fabric elements; the connection
helpers in :mod:`repro.harness` append the destination protocol endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.eventlist import EventList
from repro.sim.packet import Route
from repro.sim.pipe import Pipe
from repro.sim.queues import BaseQueue, DropTailQueue, LosslessQueue
from repro.sim.units import DEFAULT_LINK_RATE_BPS, JUMBO_MTU_BYTES, microseconds

#: signature of the callables used to create per-port queues
QueueFactory = Callable[[EventList, int, str], BaseQueue]


def default_queue_factory(
    eventlist: EventList, rate_bps: int, name: str
) -> DropTailQueue:
    """A 100-MTU drop-tail queue; the fallback when no factory is supplied."""
    return DropTailQueue(eventlist, rate_bps, 100 * JUMBO_MTU_BYTES, name=name)


def host_queue_factory(eventlist: EventList, rate_bps: int, name: str) -> DropTailQueue:
    """The default host NIC queue: deep enough to hold any initial window."""
    return DropTailQueue(eventlist, rate_bps, 512 * JUMBO_MTU_BYTES, name=name)


@dataclass
class LinkRecord:
    """One directed link: who it connects and the elements that model it."""

    src_node: str
    dst_node: str
    queue: BaseQueue
    pipe: Pipe

    def elements(self) -> Tuple[BaseQueue, Pipe]:
        """The route elements a packet traverses to cross this link."""
        return (self.queue, self.pipe)


class Topology:
    """Base class: a named-node graph of links plus path enumeration."""

    def __init__(
        self,
        eventlist: EventList,
        link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
        link_delay_ps: int = microseconds(1),
        queue_factory: Optional[QueueFactory] = None,
        host_nic_factory: Optional[QueueFactory] = None,
    ) -> None:
        self.eventlist = eventlist
        self.link_rate_bps = link_rate_bps
        self.link_delay_ps = link_delay_ps
        self.queue_factory: QueueFactory = queue_factory or default_queue_factory
        self.host_nic_factory: QueueFactory = host_nic_factory or host_queue_factory
        self.links: Dict[Tuple[str, str], LinkRecord] = {}
        self.host_count = 0

    # --- construction helpers ----------------------------------------------------

    def add_link(
        self,
        src_node: str,
        dst_node: str,
        rate_bps: Optional[int] = None,
        delay_ps: Optional[int] = None,
        is_host_uplink: bool = False,
    ) -> LinkRecord:
        """Create the queue+pipe pair for the directed link *src*→*dst*."""
        if (src_node, dst_node) in self.links:
            raise ValueError(f"link {src_node}->{dst_node} already exists")
        rate = rate_bps if rate_bps is not None else self.link_rate_bps
        delay = delay_ps if delay_ps is not None else self.link_delay_ps
        factory = self.host_nic_factory if is_host_uplink else self.queue_factory
        queue = factory(self.eventlist, rate, f"{src_node}->{dst_node}")
        pipe = Pipe(self.eventlist, delay, name=f"pipe:{src_node}->{dst_node}")
        record = LinkRecord(src_node, dst_node, queue, pipe)
        self.links[(src_node, dst_node)] = record
        return record

    def link(self, src_node: str, dst_node: str) -> LinkRecord:
        """Look up the directed link *src*→*dst*."""
        return self.links[(src_node, dst_node)]

    def queue(self, src_node: str, dst_node: str) -> BaseQueue:
        """The output queue of the directed link *src*→*dst*."""
        return self.links[(src_node, dst_node)].queue

    def set_link_rate(self, src_node: str, dst_node: str, rate_bps: int) -> None:
        """Change a link's rate in place (used for failure/degradation runs)."""
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        self.links[(src_node, dst_node)].queue.service_rate_bps = rate_bps

    def route_from_nodes(self, nodes: Sequence[str], path_id: int = 0) -> Route:
        """Build a route from a node path ``[src_host, ..., dst_host]``."""
        elements: List[object] = []
        for src_node, dst_node in zip(nodes, nodes[1:]):
            elements.extend(self.links[(src_node, dst_node)].elements())
        return Route(elements, path_id=path_id)

    # --- queries -----------------------------------------------------------------

    def host_name(self, host: int) -> str:
        """Canonical node name of host number *host*."""
        return f"host{host}"

    def hosts(self) -> List[int]:
        """All host identifiers in the topology."""
        return list(range(self.host_count))

    def get_paths(self, src_host: int, dst_host: int) -> List[Route]:
        """Every path from *src_host* to *dst_host* (overridden by subclasses)."""
        raise NotImplementedError

    def path_count(self, src_host: int, dst_host: int) -> int:
        """Number of distinct paths between two hosts."""
        return len(self.get_paths(src_host, dst_host))

    def all_queues(self) -> Iterable[BaseQueue]:
        """Every queue in the fabric (for statistics sweeps)."""
        return (record.queue for record in self.links.values())

    def fabric_queues(self) -> Iterable[BaseQueue]:
        """Every queue except host NIC queues (i.e. switch output ports)."""
        return (
            record.queue
            for record in self.links.values()
            if not record.src_node.startswith("host")
        )

    def host_nic_queue(self, host: int) -> BaseQueue:
        """The NIC (uplink) queue of *host* — the first element of its routes."""
        host_node = self.host_name(host)
        for (src, _dst), record in self.links.items():
            if src == host_node:
                return record.queue
        raise KeyError(f"host {host} has no uplink in this topology")

    # --- PFC wiring ----------------------------------------------------------------

    def wire_pfc(self) -> int:
        """Register pause relationships between adjacent lossless queues.

        For every :class:`~repro.sim.queues.LosslessQueue` on a link A→B, the
        queues that feed node A (all links X→A) are registered as upstream —
        they are the ports that get paused when A→B congests.  Returns the
        number of pause relationships created; topologies whose queues are
        not lossless are unaffected.
        """
        inbound: Dict[str, List[BaseQueue]] = {}
        for (src, dst), record in self.links.items():
            inbound.setdefault(dst, []).append(record.queue)
        wired = 0
        for (src, _dst), record in self.links.items():
            queue = record.queue
            if isinstance(queue, LosslessQueue):
                feeders = inbound.get(src, [])
                if feeders:
                    queue.register_upstream(*feeders)
                    wired += len(feeders)
        return wired

    # --- diagnostics ------------------------------------------------------------------

    def total_trimmed(self) -> int:
        """Total packets trimmed anywhere in the fabric."""
        return sum(q.stats.packets_trimmed for q in self.all_queues())

    def total_dropped(self) -> int:
        """Total packets dropped anywhere in the fabric."""
        return sum(q.stats.packets_dropped for q in self.all_queues())

    def describe(self) -> str:
        """One-line summary used by examples and logs."""
        return (
            f"{self.__class__.__name__}: {self.host_count} hosts, "
            f"{len(self.links)} directed links @ {self.link_rate_bps / 1e9:.0f} Gb/s"
        )
