"""Deterministic fabric dynamics: scheduled link failures and degradations.

The :class:`FabricController` turns the topology's link-state API into
*simulation events*: an experiment declares, before (or during) a run, that
a link fails at t₁, renegotiates to 1 Gb/s at t₂, or comes back at t₃, and
the controller applies each change at exactly that simulated time.  This is
what lets the ``failures`` experiment family reproduce the paper's
resilience claims — NDP's per-packet spraying plus the path-penalty
scoreboard route *around* a dying link mid-transfer, while per-flow-ECMP
transports stay stuck on it.

Zero-perturbation guarantee
---------------------------

Every scheduled change is armed on a *shadow* timer
(:class:`~repro.sim.eventlist.Timer` with ``shadow=True``): it draws its
tie-breaking sequence numbers from the event list's shadow counter, so
arming — or a controller that schedules nothing at all — cannot shift the
``(when, seq)`` order of any ordinary event.  A run with a controller
installed but no events scheduled is therefore bit-for-bit identical to a
run without one, the same guarantee the fault injector and the liveness
watchdogs give.  At a timestamp tie a link change deterministically applies
*after* the ordinary events of that picosecond.

Changes are applied through :meth:`~repro.topology.base.Topology.fail_link`
and friends, so subscribers (NDP path managers, baseline ECMP selectors)
react through the normal notification path and the applied history is
recorded in :attr:`FabricController.fired` for timeline assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.eventlist import EventList, Timer
from repro.topology.base import Topology

#: actions a controller can schedule, in the order they appear in reports
ACTIONS = ("fail", "recover", "rate", "delay")


@dataclass(frozen=True)
class ScheduledLinkEvent:
    """One link change the controller will apply (or has applied)."""

    when_ps: int
    #: one of :data:`ACTIONS`
    action: str
    src_node: str
    dst_node: str
    rate_bps: Optional[int] = None
    delay_ps: Optional[int] = None

    def describe(self) -> str:
        """Human-readable one-liner for timelines and logs."""
        detail = ""
        if self.rate_bps is not None:
            detail = f" -> {self.rate_bps / 1e9:g} Gb/s"
        elif self.delay_ps is not None:
            detail = f" -> {self.delay_ps} ps"
        return f"t={self.when_ps}ps {self.action} {self.src_node}->{self.dst_node}{detail}"


class FabricController:
    """Schedules deterministic link ``fail`` / ``recover`` / ``degrade`` events.

    Parameters
    ----------
    topology:
        The fabric to mutate; link names are validated at scheduling time so
        a typo fails fast instead of at t₁.
    eventlist:
        Defaults to the topology's event list.

    All ``schedule_*`` methods take the two endpoint node names and default
    to ``bidirectional=True`` — a cut cable, a renegotiated SerDes or a
    rerouted fiber affects both directions; pass ``False`` to model a
    unidirectional fault.
    """

    def __init__(self, topology: Topology, eventlist: Optional[EventList] = None) -> None:
        self.topology = topology
        self.eventlist = eventlist if eventlist is not None else topology.eventlist
        #: every event ever scheduled, in scheduling order
        self.scheduled: List[ScheduledLinkEvent] = []
        #: events applied so far, in application order
        self.fired: List[ScheduledLinkEvent] = []
        self._timers: List[Timer] = []

    # --- scheduling ------------------------------------------------------------

    def schedule_fail(
        self, when_ps: int, node_a: str, node_b: str, bidirectional: bool = True
    ) -> None:
        """Fail the link(s) between *node_a* and *node_b* at *when_ps*."""
        self._schedule(when_ps, "fail", node_a, node_b, bidirectional)

    def schedule_recover(
        self, when_ps: int, node_a: str, node_b: str, bidirectional: bool = True
    ) -> None:
        """Recover the link(s) between *node_a* and *node_b* at *when_ps*."""
        self._schedule(when_ps, "recover", node_a, node_b, bidirectional)

    def schedule_degrade(
        self,
        when_ps: int,
        node_a: str,
        node_b: str,
        rate_bps: int,
        bidirectional: bool = True,
    ) -> None:
        """Re-rate the link(s) to *rate_bps* at *when_ps* (Figure 22 mid-run)."""
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        self._schedule(when_ps, "rate", node_a, node_b, bidirectional, rate_bps=rate_bps)

    def schedule_delay_change(
        self,
        when_ps: int,
        node_a: str,
        node_b: str,
        delay_ps: int,
        bidirectional: bool = True,
    ) -> None:
        """Change the link(s) propagation delay to *delay_ps* at *when_ps*."""
        if delay_ps < 0:
            raise ValueError(f"link delay must be non-negative, got {delay_ps}")
        self._schedule(
            when_ps, "delay", node_a, node_b, bidirectional, delay_ps=delay_ps
        )

    def schedule_outage(
        self,
        node_a: str,
        node_b: str,
        fail_at_ps: int,
        recover_at_ps: int,
        bidirectional: bool = True,
    ) -> None:
        """Convenience: a bounded outage (fail at t₁, recover at t₂ > t₁)."""
        if recover_at_ps <= fail_at_ps:
            raise ValueError(
                f"recovery ({recover_at_ps} ps) must come after the failure "
                f"({fail_at_ps} ps)"
            )
        self.schedule_fail(fail_at_ps, node_a, node_b, bidirectional)
        self.schedule_recover(recover_at_ps, node_a, node_b, bidirectional)

    # --- introspection -----------------------------------------------------------

    def timeline(self) -> List[ScheduledLinkEvent]:
        """Every scheduled event, ordered by application time."""
        return sorted(self.scheduled, key=lambda e: e.when_ps)

    def pending(self) -> List[ScheduledLinkEvent]:
        """Scheduled events that have not been applied yet."""
        applied = len(self.fired)
        return self.timeline()[applied:]

    # --- internals ----------------------------------------------------------------

    def _schedule(
        self,
        when_ps: int,
        action: str,
        node_a: str,
        node_b: str,
        bidirectional: bool,
        rate_bps: Optional[int] = None,
        delay_ps: Optional[int] = None,
    ) -> None:
        directions = [(node_a, node_b)]
        if bidirectional:
            directions.append((node_b, node_a))
        for src_node, dst_node in directions:
            # validate the link now: a typo should fail at scheduling time
            self.topology.link(src_node, dst_node)
            event = ScheduledLinkEvent(
                when_ps, action, src_node, dst_node, rate_bps=rate_bps, delay_ps=delay_ps
            )
            self.scheduled.append(event)
            timer = self.eventlist.new_timer(self._fire, event, shadow=True)
            timer.schedule_at(when_ps)
            self._timers.append(timer)

    def _fire(self, event: ScheduledLinkEvent) -> None:
        topology = self.topology
        if event.action == "fail":
            topology.fail_link(event.src_node, event.dst_node)
        elif event.action == "recover":
            topology.recover_link(event.src_node, event.dst_node)
        elif event.action == "rate":
            topology.set_link_rate(event.src_node, event.dst_node, event.rate_bps)
        else:
            topology.set_link_delay_ps(event.src_node, event.dst_node, event.delay_ps)
        self.fired.append(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FabricController({len(self.fired)}/{len(self.scheduled)} events applied)"
        )
