"""k-ary FatTree (folded Clos) topology.

The FatTree of Al-Fares et al. is the topology used for every large-scale
experiment in the paper: ``k`` pods, each with ``k/2`` top-of-rack (ToR) and
``k/2`` aggregation switches, ``(k/2)^2`` core switches, and ``k^3/4`` hosts.
Every pair of hosts in different pods is connected by ``(k/2)^2`` equal-cost
paths (one per core switch), which is what NDP's per-packet multipath
spraying exploits.

The class supports the two fabric variations the paper evaluates:

* **oversubscription** (Figure 23): ToR-to-aggregation uplinks carry a
  fraction ``1/oversubscription`` of the host-facing bandwidth;
* **link degradation** (Figure 22): any individual link can be re-rated
  after construction, e.g. dropping one core↔aggregation link to 1 Gb/s.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.eventlist import EventList
from repro.sim.units import DEFAULT_LINK_RATE_BPS, microseconds
from repro.topology.base import QueueFactory, Topology
from repro.topology.route_table import NodePath


class FatTreeTopology(Topology):
    """A three-tier k-ary FatTree.

    Parameters
    ----------
    eventlist:
        Simulation event list.
    k:
        Arity; must be even.  ``k=4`` gives 16 hosts, ``k=8`` 128 hosts,
        ``k=12`` the paper's 432-host fabric and ``k=32`` its 8192-host one.
    link_rate_bps:
        Rate of host-facing links (and, divided by *oversubscription*, of the
        ToR uplinks).
    link_delay_ps:
        One-way propagation delay per hop.
    oversubscription:
        Ratio of host-facing to uplink bandwidth at the ToR layer; 1 means a
        fully provisioned Clos.
    queue_factory / host_nic_factory:
        Callables creating the switch-port and host-NIC queues; this is where
        an experiment chooses NDP trimming queues, ECN queues, PFC queues or
        plain drop-tail.
    """

    def __init__(
        self,
        eventlist: EventList,
        k: int = 4,
        link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
        link_delay_ps: int = microseconds(1),
        oversubscription: float = 1.0,
        queue_factory: Optional[QueueFactory] = None,
        host_nic_factory: Optional[QueueFactory] = None,
    ) -> None:
        if k < 2 or k % 2 != 0:
            raise ValueError(f"FatTree arity k must be even and >= 2, got {k}")
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1")
        super().__init__(
            eventlist,
            link_rate_bps=link_rate_bps,
            link_delay_ps=link_delay_ps,
            queue_factory=queue_factory,
            host_nic_factory=host_nic_factory,
        )
        self.k = k
        self.radix = k // 2
        self.oversubscription = oversubscription
        self.pods = k
        self.hosts_per_tor = self.radix
        self.tors_per_pod = self.radix
        self.aggs_per_pod = self.radix
        self.core_count = self.radix * self.radix
        self.hosts_per_pod = self.hosts_per_tor * self.tors_per_pod
        self.host_count = self.hosts_per_pod * self.pods
        self._build()

    # --- construction -------------------------------------------------------------

    def _build(self) -> None:
        uplink_rate = int(self.link_rate_bps / self.oversubscription)
        for host in range(self.host_count):
            tor = self._tor_name(self.host_pod(host), self.host_tor_index(host))
            host_node = self.host_name(host)
            self.add_link(host_node, tor, is_host_uplink=True)
            self.add_link(tor, host_node)
        for pod in range(self.pods):
            for tor_index in range(self.tors_per_pod):
                tor = self._tor_name(pod, tor_index)
                for agg_index in range(self.aggs_per_pod):
                    agg = self._agg_name(pod, agg_index)
                    self.add_link(tor, agg, rate_bps=uplink_rate)
                    self.add_link(agg, tor, rate_bps=uplink_rate)
            for agg_index in range(self.aggs_per_pod):
                agg = self._agg_name(pod, agg_index)
                for core_offset in range(self.radix):
                    core = self._core_name(agg_index * self.radix + core_offset)
                    self.add_link(agg, core)
                    self.add_link(core, agg)

    # --- naming / addressing --------------------------------------------------------

    def host_pod(self, host: int) -> int:
        """Pod number of *host*."""
        return host // self.hosts_per_pod

    def host_tor_index(self, host: int) -> int:
        """Index (within its pod) of the ToR switch *host* attaches to."""
        return (host % self.hosts_per_pod) // self.hosts_per_tor

    def _tor_name(self, pod: int, tor_index: int) -> str:
        return f"pod{pod}_tor{tor_index}"

    def _agg_name(self, pod: int, agg_index: int) -> str:
        return f"pod{pod}_agg{agg_index}"

    def _core_name(self, core: int) -> str:
        return f"core{core}"

    def tor_of_host(self, host: int) -> str:
        """Node name of the ToR switch serving *host*."""
        return self._tor_name(self.host_pod(host), self.host_tor_index(host))

    def hosts_of_tor(self, pod: int, tor_index: int) -> List[int]:
        """Host identifiers attached to one ToR switch."""
        first = pod * self.hosts_per_pod + tor_index * self.hosts_per_tor
        return list(range(first, first + self.hosts_per_tor))

    def core_agg_pair(self, core: int, pod: int) -> Tuple[str, str]:
        """``(core_node, agg_node)`` endpoints of the core↔agg link into *pod*.

        The canonical target of the paper's failure experiments (Figure 22's
        degraded link, the mid-transfer cut of the ``failures`` family).
        """
        if not 0 <= core < self.core_count:
            raise ValueError(f"core must be in [0, {self.core_count}), got {core}")
        if not 0 <= pod < self.pods:
            raise ValueError(f"pod must be in [0, {self.pods}), got {pod}")
        return self._core_name(core), self._agg_name(pod, core // self.radix)

    # --- path enumeration --------------------------------------------------------------

    def node_paths(self, src_host: int, dst_host: int) -> List[NodePath]:
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        src_node = self.host_name(src_host)
        dst_node = self.host_name(dst_host)
        src_pod, dst_pod = self.host_pod(src_host), self.host_pod(dst_host)
        src_tor = self.tor_of_host(src_host)
        dst_tor = self.tor_of_host(dst_host)

        if src_tor == dst_tor:
            return [(src_node, src_tor, dst_node)]

        if src_pod == dst_pod:
            return [
                (src_node, src_tor, self._agg_name(src_pod, agg_index), dst_tor, dst_node)
                for agg_index in range(self.aggs_per_pod)
            ]

        paths: List[NodePath] = []
        for core in range(self.core_count):
            agg_index = core // self.radix
            paths.append(
                (
                    src_node,
                    src_tor,
                    self._agg_name(src_pod, agg_index),
                    self._core_name(core),
                    self._agg_name(dst_pod, agg_index),
                    dst_tor,
                    dst_node,
                )
            )
        return paths

    # --- failure injection ----------------------------------------------------------------

    def degrade_core_link(self, core: int, pod: int, new_rate_bps: int) -> None:
        """Reduce the rate of the core→aggregation link into *pod* (and back).

        This reproduces the Figure 22 failure: one core↔upper-pod link
        renegotiates to a lower speed, creating an asymmetric fabric that
        per-packet spraying must route around.
        """
        core_node, agg = self.core_agg_pair(core, pod)
        self.set_link_rate(core_node, agg, new_rate_bps)
        self.set_link_rate(agg, core_node, new_rate_bps)

    def fail_core_link(self, core: int, pod: int) -> None:
        """Cut the core↔aggregation cable into *pod* (both directions)."""
        core_node, agg = self.core_agg_pair(core, pod)
        self.fail_link_pair(core_node, agg)

    def recover_core_link(self, core: int, pod: int) -> None:
        """Restore the core↔aggregation cable into *pod* (both directions)."""
        core_node, agg = self.core_agg_pair(core, pod)
        self.recover_link_pair(core_node, agg)

    def uplink_queues(self) -> List[object]:
        """Queues on host→core direction above the ToR (ToR→agg and agg→core).

        Used to measure how much trimming happens on uplinks, the §"Congestion
        Control" load-balancing comparison.
        """
        queues = []
        for (src, dst), record in self.links.items():
            if src.startswith("pod") and "_tor" in src and "_agg" in dst:
                queues.append(record.queue)
            elif "_agg" in src and dst.startswith("core"):
                queues.append(record.queue)
        return queues

    def downlink_queues(self) -> List[object]:
        """ToR→host queues — where incast trimming is expected to concentrate."""
        return [
            record.queue
            for (src, dst), record in self.links.items()
            if "_tor" in src and dst.startswith("host")
        ]
