"""Datacenter topologies used by the paper's experiments.

* :class:`~repro.topology.fattree.FatTreeTopology` — the k-ary folded Clos
  used for every large-scale simulation (Figures 4 and 14-23), with optional
  core oversubscription and per-link degradation (failure experiments).
* :class:`~repro.topology.leafspine.LeafSpineTopology` — the two-tier
  testbed topology (8 servers, six 4-port switches) of Figures 9 and 19.
* :class:`~repro.topology.simple.SingleSwitchTopology` — a star around one
  switch, used for Figure 2 (switch overload), Figure 21 (sender-limited
  traffic) and many unit tests.
* :class:`~repro.topology.simple.BackToBackTopology` — two directly-attached
  hosts, used for the RPC latency / initial-window experiments (Figures 8,
  11, 12).

All topologies share the :class:`~repro.topology.base.Topology` base class:
they register directed links (an output queue followed by a propagation
pipe), enumerate paths symbolically via ``node_paths(src, dst)``, and answer
``get_paths(src, dst)`` with every *surviving* path as a
:class:`~repro.sim.packet.Route`, resolved through the per-topology
:class:`~repro.topology.route_table.RouteTable`.

The fabric is dynamic: the link-state API (``fail_link`` / ``recover_link``
/ ``set_link_rate`` / ``set_link_delay_ps``) mutates it mid-run and notifies
subscribers, and :class:`~repro.topology.dynamics.FabricController`
schedules those mutations deterministically on the simulation clock (shadow
timers — zero perturbation when unused).
"""

from repro.topology.base import (
    LinkRecord,
    LinkStateEvent,
    QueueFactory,
    Topology,
)
from repro.topology.dynamics import FabricController, ScheduledLinkEvent
from repro.topology.fattree import FatTreeTopology
from repro.topology.leafspine import LeafSpineTopology
from repro.topology.route_table import NodePath, RouteTable
from repro.topology.simple import BackToBackTopology, SingleSwitchTopology

__all__ = [
    "Topology",
    "LinkRecord",
    "LinkStateEvent",
    "QueueFactory",
    "RouteTable",
    "NodePath",
    "FabricController",
    "ScheduledLinkEvent",
    "FatTreeTopology",
    "LeafSpineTopology",
    "SingleSwitchTopology",
    "BackToBackTopology",
]
