"""Micro-topologies: a single switch, and two back-to-back hosts.

These are used for the small-scale experiments in the paper —

* Figure 2 (many unresponsive flows converging on one 10 Gb/s output port),
* Figure 21 (the sender-limited A→{B,C,D,E}, F→E pattern around one switch),
* Figures 8/11/12 (two servers connected back-to-back) —

and extensively by the unit tests, where a full Clos would only obscure the
behaviour under test.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.eventlist import EventList
from repro.sim.units import DEFAULT_LINK_RATE_BPS, microseconds
from repro.topology.base import QueueFactory, Topology
from repro.topology.route_table import NodePath


class SingleSwitchTopology(Topology):
    """A star: every host hangs off one switch.

    Any pair of hosts is connected by exactly one path, and all traffic to a
    host shares the switch's output port towards it — the simplest setting
    that exhibits incast and output-port overload.
    """

    SWITCH = "switch0"

    def __init__(
        self,
        eventlist: EventList,
        hosts: int = 2,
        link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
        link_delay_ps: int = microseconds(1),
        queue_factory: Optional[QueueFactory] = None,
        host_nic_factory: Optional[QueueFactory] = None,
    ) -> None:
        if hosts < 2:
            raise ValueError("a single-switch topology needs at least two hosts")
        super().__init__(
            eventlist,
            link_rate_bps=link_rate_bps,
            link_delay_ps=link_delay_ps,
            queue_factory=queue_factory,
            host_nic_factory=host_nic_factory,
        )
        self.host_count = hosts
        self._build()

    def _build(self) -> None:
        for host in range(self.host_count):
            host_node = self.host_name(host)
            self.add_link(host_node, self.SWITCH, is_host_uplink=True)
            self.add_link(self.SWITCH, host_node)

    def node_paths(self, src_host: int, dst_host: int) -> List[NodePath]:
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        return [(self.host_name(src_host), self.SWITCH, self.host_name(dst_host))]

    def downlink_queue(self, host: int):
        """The switch output queue towards *host* (the incast hot spot)."""
        return self.queue(self.SWITCH, self.host_name(host))


class BackToBackTopology(Topology):
    """Two hosts connected by a single cable (the §5 RPC latency setup)."""

    def __init__(
        self,
        eventlist: EventList,
        link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
        link_delay_ps: int = microseconds(1),
        queue_factory: Optional[QueueFactory] = None,
        host_nic_factory: Optional[QueueFactory] = None,
    ) -> None:
        super().__init__(
            eventlist,
            link_rate_bps=link_rate_bps,
            link_delay_ps=link_delay_ps,
            queue_factory=queue_factory,
            host_nic_factory=host_nic_factory,
        )
        self.host_count = 2
        self.add_link("host0", "host1", is_host_uplink=True)
        self.add_link("host1", "host0", is_host_uplink=True)

    def node_paths(self, src_host: int, dst_host: int) -> List[NodePath]:
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        return [(self.host_name(src_host), self.host_name(dst_host))]


class IndependentPairsTopology(Topology):
    """*pairs* disjoint back-to-back cables: host ``2i`` ↔ host ``2i+1``.

    The degenerate sharding benchmark: the pairs share no queue, pipe or
    switch, so a pod-style partition that keeps each pair in one shard has
    zero boundary links and the shards never need to exchange traffic.
    This isolates the window-barrier machinery's overhead (and, in the
    conformance suite, pins the digest-merge rule on a topology where the
    1-shard and N-shard executions are trivially event-identical).
    """

    def __init__(
        self,
        eventlist: EventList,
        pairs: int = 2,
        link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
        link_delay_ps: int = microseconds(1),
        queue_factory: Optional[QueueFactory] = None,
        host_nic_factory: Optional[QueueFactory] = None,
    ) -> None:
        if pairs < 1:
            raise ValueError("need at least one host pair")
        super().__init__(
            eventlist,
            link_rate_bps=link_rate_bps,
            link_delay_ps=link_delay_ps,
            queue_factory=queue_factory,
            host_nic_factory=host_nic_factory,
        )
        self.pairs = pairs
        self.host_count = 2 * pairs
        for pair in range(pairs):
            left, right = self.host_name(2 * pair), self.host_name(2 * pair + 1)
            self.add_link(left, right, is_host_uplink=True)
            self.add_link(right, left, is_host_uplink=True)

    def node_paths(self, src_host: int, dst_host: int) -> List[NodePath]:
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        if src_host // 2 != dst_host // 2:
            raise ValueError(
                f"hosts {src_host} and {dst_host} are on disjoint cables"
            )
        return [(self.host_name(src_host), self.host_name(dst_host))]
