"""Micro-topologies: a single switch, and two back-to-back hosts.

These are used for the small-scale experiments in the paper —

* Figure 2 (many unresponsive flows converging on one 10 Gb/s output port),
* Figure 21 (the sender-limited A→{B,C,D,E}, F→E pattern around one switch),
* Figures 8/11/12 (two servers connected back-to-back) —

and extensively by the unit tests, where a full Clos would only obscure the
behaviour under test.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.eventlist import EventList
from repro.sim.units import DEFAULT_LINK_RATE_BPS, microseconds
from repro.topology.base import QueueFactory, Topology
from repro.topology.route_table import NodePath


class SingleSwitchTopology(Topology):
    """A star: every host hangs off one switch.

    Any pair of hosts is connected by exactly one path, and all traffic to a
    host shares the switch's output port towards it — the simplest setting
    that exhibits incast and output-port overload.
    """

    SWITCH = "switch0"

    def __init__(
        self,
        eventlist: EventList,
        hosts: int = 2,
        link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
        link_delay_ps: int = microseconds(1),
        queue_factory: Optional[QueueFactory] = None,
        host_nic_factory: Optional[QueueFactory] = None,
    ) -> None:
        if hosts < 2:
            raise ValueError("a single-switch topology needs at least two hosts")
        super().__init__(
            eventlist,
            link_rate_bps=link_rate_bps,
            link_delay_ps=link_delay_ps,
            queue_factory=queue_factory,
            host_nic_factory=host_nic_factory,
        )
        self.host_count = hosts
        self._build()

    def _build(self) -> None:
        for host in range(self.host_count):
            host_node = self.host_name(host)
            self.add_link(host_node, self.SWITCH, is_host_uplink=True)
            self.add_link(self.SWITCH, host_node)

    def node_paths(self, src_host: int, dst_host: int) -> List[NodePath]:
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        return [(self.host_name(src_host), self.SWITCH, self.host_name(dst_host))]

    def downlink_queue(self, host: int):
        """The switch output queue towards *host* (the incast hot spot)."""
        return self.queue(self.SWITCH, self.host_name(host))


class BackToBackTopology(Topology):
    """Two hosts connected by a single cable (the §5 RPC latency setup)."""

    def __init__(
        self,
        eventlist: EventList,
        link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
        link_delay_ps: int = microseconds(1),
        queue_factory: Optional[QueueFactory] = None,
        host_nic_factory: Optional[QueueFactory] = None,
    ) -> None:
        super().__init__(
            eventlist,
            link_rate_bps=link_rate_bps,
            link_delay_ps=link_delay_ps,
            queue_factory=queue_factory,
            host_nic_factory=host_nic_factory,
        )
        self.host_count = 2
        self.add_link("host0", "host1", is_host_uplink=True)
        self.add_link("host1", "host0", is_host_uplink=True)

    def node_paths(self, src_host: int, dst_host: int) -> List[NodePath]:
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        return [(self.host_name(src_host), self.host_name(dst_host))]
