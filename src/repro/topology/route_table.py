"""Symbolic route resolution against the live link state.

Topologies enumerate paths *symbolically* — :meth:`~repro.topology.base.Topology.node_paths`
returns plain node-name tuples like ``("host0", "pod0_tor0", "pod0_agg1",
"core5", "pod3_agg1", "pod3_tor1", "host13")`` — and every consumer obtains
concrete :class:`~repro.sim.packet.Route` element lists through the
topology's :class:`RouteTable`.  The table is what makes the fabric a
*dynamic* object:

* **resolution** walks each symbolic path over the topology's
  :class:`~repro.topology.base.LinkRecord` map and emits the queue+pipe
  element pair per hop — a path that traverses a link currently marked down
  is pruned from the result;
* **identity** — ``path_id`` is the index of the path in the *full* symbolic
  enumeration, so a path keeps its identity across failure and recovery
  (the NDP path scoreboard keys on it) and pruning never renumbers the
  survivors;
* **caching** — symbolic enumerations are immutable for a topology's
  lifetime and cached forever; resolved route lists are cached per
  link-state version (:attr:`~repro.topology.base.Topology.route_version`)
  and recomputed lazily after a ``fail``/``recover`` event.  A static fabric
  therefore resolves each (src, dst) pair exactly once, and repeated
  ``get_paths`` calls return the *same* route objects — which is also what
  keeps flow creation cheap on big fan-outs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, TYPE_CHECKING

from repro.sim.packet import Route

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.topology.base import Topology

#: a symbolic path: the ordered node names a packet visits, hosts included
NodePath = Tuple[str, ...]


class RouteTable:
    """Resolve a topology's symbolic node paths into live :class:`Route` lists."""

    def __init__(self, topology: "Topology") -> None:
        self._topology = topology
        self._symbolic: Dict[Tuple[int, int], List[NodePath]] = {}
        self._resolved: Dict[Tuple[int, int], Tuple[int, List[Route]]] = {}

    # --- queries ---------------------------------------------------------------

    def node_paths(self, src_host: int, dst_host: int) -> List[NodePath]:
        """The full symbolic enumeration for a host pair (failures ignored)."""
        key = (src_host, dst_host)
        paths = self._symbolic.get(key)
        if paths is None:
            paths = [tuple(p) for p in self._topology.node_paths(src_host, dst_host)]
            self._symbolic[key] = paths
        return paths

    def routes(self, src_host: int, dst_host: int) -> List[Route]:
        """Every *surviving* path as a resolved route (dead links pruned).

        ``path_id`` is the position in the symbolic enumeration, so the ids
        of surviving paths are stable across any sequence of failures and
        recoveries.  May be empty when every path is down (a partition).
        """
        key = (src_host, dst_host)
        version = self._topology.route_version
        cached = self._resolved.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        links = self._topology.links
        routes: List[Route] = []
        for path_id, nodes in enumerate(self.node_paths(src_host, dst_host)):
            elements: List[object] = []
            alive = True
            for hop in zip(nodes, nodes[1:]):
                record = links[hop]
                if not record.up:
                    alive = False
                    break
                elements.append(record.queue)
                elements.append(record.pipe)
            if alive:
                routes.append(Route(elements, path_id=path_id))
        self._resolved[key] = (version, routes)
        return routes

    def resolve(self, nodes: Sequence[str], path_id: int = 0) -> Route:
        """Resolve one explicit node path, failed links included (raw access)."""
        elements: List[object] = []
        links = self._topology.links
        for hop in zip(nodes, nodes[1:]):
            record = links[hop]
            elements.append(record.queue)
            elements.append(record.pipe)
        return Route(elements, path_id=path_id)

    # --- cache control -----------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every resolved route list (symbolic enumerations are kept)."""
        self._resolved.clear()
