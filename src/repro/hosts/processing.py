"""Host processing-delay and pull-jitter models.

These models are the documented substitution for the paper's hardware
testbed (see DESIGN.md): rather than measuring a Linux/DPDK stack, we model
its delay components explicitly and feed them into the simulator, exactly as
§6.0 of the paper does with its measured distributions.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.pull_queue import NdpPullPacer
from repro.sim import units
from repro.sim.eventlist import EventList


@dataclass
class HostProcessingModel:
    """Per-message host-side delay components.

    All values are picoseconds.  A component set to zero simply does not
    contribute; ``sleep_wake_probability`` models how often the receiving
    core is found in a deep sleep state (interrupt-driven stacks only — a
    DPDK core that spins never sleeps).
    """

    #: fixed per-message protocol processing (syscalls, socket bookkeeping)
    protocol_processing_ps: int = units.microseconds(5)
    #: time to copy the message between kernel and user space (0 for DPDK)
    copy_ps: int = 0
    #: interrupt dispatch latency (0 for a polling stack)
    interrupt_ps: int = 0
    #: extra latency when the CPU has entered a deep sleep state
    sleep_wake_ps: int = 0
    #: probability that a message finds the CPU asleep
    sleep_wake_probability: float = 0.0
    #: relative jitter (std-dev as a fraction of the mean) on the total delay
    jitter_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.sleep_wake_probability <= 1.0:
            raise ValueError("sleep_wake_probability must be a probability")
        if self.jitter_fraction < 0:
            raise ValueError("jitter_fraction must be non-negative")

    def base_delay_ps(self) -> int:
        """Deterministic part of the per-message delay."""
        return self.protocol_processing_ps + self.copy_ps + self.interrupt_ps

    def sample(self, rng: random.Random) -> int:
        """One per-message host delay sample."""
        delay = float(self.base_delay_ps())
        if self.sleep_wake_ps and rng.random() < self.sleep_wake_probability:
            delay += self.sleep_wake_ps
        if self.jitter_fraction > 0 and delay > 0:
            delay *= max(0.0, rng.gauss(1.0, self.jitter_fraction))
        return max(0, int(delay))

    # --- presets matching the stacks compared in Figure 8 ----------------------------

    @classmethod
    def ndp_dpdk(cls) -> "HostProcessingModel":
        """NDP's userspace stack: a spinning DPDK core, no interrupts/copies.

        Calibrated so that NDP protocol + application processing contributes
        the ~40 us the paper reports on top of the ~22 us DPDK ping-pong
        time, giving the measured 62 us median RPC latency.
        """
        return cls(
            protocol_processing_ps=units.microseconds(28),
            copy_ps=0,
            interrupt_ps=0,
            sleep_wake_ps=0,
            sleep_wake_probability=0.0,
        )

    @classmethod
    def kernel_tcp(cls, deep_sleep: bool = True) -> "HostProcessingModel":
        """Interrupt-driven kernel TCP, optionally with deep CPU sleep states.

        The paper measures roughly 50 us of interrupt/copy/stack overheads per
        message and a ~160 us penalty whenever the core has entered a deep
        sleep state (which, for an interrupt-driven stack that idles between
        messages, happens for most RPCs at one end or the other).
        """
        return cls(
            protocol_processing_ps=units.microseconds(15),
            copy_ps=units.microseconds(10),
            interrupt_ps=units.microseconds(30),
            sleep_wake_ps=units.microseconds(160) if deep_sleep else 0,
            sleep_wake_probability=0.45 if deep_sleep else 0.0,
        )

    @classmethod
    def kernel_tfo(cls, deep_sleep: bool = True) -> "HostProcessingModel":
        """TCP Fast Open: the same kernel stack, one fewer round trip."""
        return cls.kernel_tcp(deep_sleep=deep_sleep)


@dataclass
class RpcStackModel:
    """End-to-end model of one request/response RPC for Figure 8.

    The RPC latency is two network traversals (request and response) plus
    host processing at each end, plus any connection-setup round trips the
    protocol needs before data can flow.
    """

    host_model: HostProcessingModel
    #: extra network round trips spent on connection setup (TCP: 1, TFO/NDP: 0)
    handshake_rtts: int = 0

    def rpc_latency_ps(
        self,
        network_rtt_ps: int,
        rng: random.Random,
    ) -> int:
        """One sampled RPC completion time."""
        latency = network_rtt_ps
        # request processed at the server, response processed at the client
        latency += self.host_model.sample(rng)
        latency += self.host_model.sample(rng)
        # each connection-setup round trip is handled in the kernel at both
        # ends: it pays the wire RTT plus interrupt dispatch, but not the full
        # copy/application processing path
        if self.handshake_rtts:
            per_handshake = network_rtt_ps + 2 * self.host_model.interrupt_ps
            latency += self.handshake_rtts * per_handshake
        return latency

    def sample_many(
        self, network_rtt_ps: int, rng: random.Random, count: int
    ) -> List[int]:
        """Sample *count* RPC latencies."""
        return [self.rpc_latency_ps(network_rtt_ps, rng) for _ in range(count)]


class PullSpacingJitter:
    """Log-normal jitter around the target pull spacing (Figure 12).

    The prototype's measured spacing has its median at the target (1.2 us for
    1500 B, 7.2 us for 9 KB) with some variance, larger for small packets.
    ``sigma`` is the log-normal shape parameter; ``floor_fraction`` prevents
    samples collapsing to zero.
    """

    def __init__(
        self,
        sigma: float = 0.25,
        floor_fraction: float = 0.2,
        rng: Optional[random.Random] = None,
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0.0 <= floor_fraction <= 1.0:
            raise ValueError("floor_fraction must be in [0, 1]")
        self.sigma = sigma
        self.floor_fraction = floor_fraction
        self.rng = rng if rng is not None else random.Random(0)

    def sample(self, target_ps: int) -> int:
        """One jittered spacing whose median is *target_ps*."""
        if target_ps <= 0:
            return 0
        factor = math.exp(self.rng.gauss(0.0, self.sigma))
        return max(int(self.floor_fraction * target_ps), int(target_ps * factor))

    def sample_many(self, target_ps: int, count: int) -> List[int]:
        """Sample *count* spacings (used to plot the Figure 12 CDF)."""
        return [self.sample(target_ps) for _ in range(count)]


class JitteredPullPacer(NdpPullPacer):
    """An NDP pull pacer that replays the prototype's imperfect pull spacing.

    Drop-in replacement for :class:`~repro.core.pull_queue.NdpPullPacer`:
    §6.0 of the paper adds exactly this to the simulator ("we added code to
    the simulator that draws pull spacing intervals from the experimentally
    measured distribution") to check that the real stack's jitter does not
    change the results (Figures 11 and 13).
    """

    def __init__(self, *args, jitter: Optional[PullSpacingJitter] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.jitter = jitter if jitter is not None else PullSpacingJitter()

    def _next_interval(self) -> int:
        return self.jitter.sample(self.pull_interval_ps)
