"""Host models: processing delays, CPU sleep states and pull-spacing jitter.

The paper's §5/§6.0 experiments run on a real Linux + DPDK + NetFPGA testbed
and then show that feeding two measured artefacts back into the simulator —
host processing delay and imperfect PULL pacing — reproduces the testbed
behaviour.  This package implements exactly those models so the testbed
figures (8, 11, 12, 13) can be regenerated in simulation:

* :class:`HostProcessingModel` — per-message stack overheads (DPDK polling
  vs. interrupt-driven kernel TCP, CPU deep-sleep wake-up latency, the extra
  handshake round trip) used by the Figure 8 RPC latency comparison.
* :class:`PullSpacingJitter` — a log-normal jitter model of the prototype's
  pull spacing (Figure 12), and :class:`JitteredPullPacer`, a drop-in pull
  pacer that replays it (Figures 11 and 13).
"""

from repro.hosts.processing import (
    HostProcessingModel,
    JitteredPullPacer,
    PullSpacingJitter,
    RpcStackModel,
)

__all__ = [
    "HostProcessingModel",
    "RpcStackModel",
    "PullSpacingJitter",
    "JitteredPullPacer",
]
