"""Capability flags transports advertise and experiment families consume.

This tiny module exists so that both the network builders
(:mod:`repro.harness.baseline_networks`, :mod:`repro.harness.ndp_network`)
and the transport registry (:mod:`repro.transports.registry`) can share the
capability vocabulary without importing each other: builders *declare* a
:class:`TransportCapabilities` on the class, families *declare* a
:class:`FamilyTraits` describing what they do to the fabric, and the
registry decides whether a (transport, family) grid point is runnable.

``CapabilityError`` is the hard failure for a *mis-wired build* (e.g. DCQCN
endpoints on a fabric whose switch ports cannot pause) — it means the
simulation would silently model the wrong protocol, so it is never skipped
over.  Grid-point *incompatibilities* (a runnable-looking combination the
registry knows to be meaningless) are reported through
:class:`repro.transports.registry.IncompatibleTransportError` instead, which
sweeps treat as skip-with-reason.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransportCapabilities:
    """What a transport needs from — and does to — the fabric.

    ``needs_lossless_fabric``
        The protocol assumes no packet is ever dropped (PFC pause wiring);
        running it over drop-tail ports silently mis-simulates it.
    ``uses_ecn``
        Congestion feedback comes from ECN marks, so switch queues must mark.
    ``per_packet_spraying``
        Every packet may take a different path; the transport tolerates
        reordering by design.
    ``supports_trimming``
        The protocol understands trimmed-to-header packets (return-to-sender
        / NACK semantics).
    ``multipath``
        The transport uses several paths concurrently (subflows or spraying)
        rather than hashing each flow onto one.
    """

    needs_lossless_fabric: bool = False
    uses_ecn: bool = False
    per_packet_spraying: bool = False
    supports_trimming: bool = False
    multipath: bool = False


@dataclass(frozen=True)
class FamilyTraits:
    """What an experiment family does to the fabric while flows are live.

    ``severs_links``
        The scenario cuts links (before or during the run).  Severing a
        link of a lossless fabric invalidates its PFC pause graph — paused
        queues upstream of the cut can wedge forever — so transports with
        ``needs_lossless_fabric`` are incompatible with such families.
    ``mutates_link_rates``
        The scenario renegotiates link rates mid-run (degradation); the
        path set is unchanged, so lossless fabrics remain valid.
    """

    family: str
    severs_links: bool = False
    mutates_link_rates: bool = False


class CapabilityError(RuntimeError):
    """A network was wired onto a fabric that violates its capabilities."""
