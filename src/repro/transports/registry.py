"""The transport registry: every protocol the harness can run, by name.

This module is the single place where a protocol *name* is bound to the
machinery that runs it — the ``*Network`` builder class, its
:class:`~repro.transports.capabilities.TransportCapabilities`, and an
optional config factory for named variants (e.g. NDP with the path penalty
disabled).  Everything above this layer — ``harness/figures.py`` plan
builders, the sweep CLI, the examples, the perf benchmarks — resolves
protocols through :func:`resolve` / :func:`build_network` instead of keeping
private ``{"NDP": NdpNetwork, ...}`` dicts, which is what lets any
experiment family accept ``--set protocol=ndp,dctcp,dcqcn,phost,mptcp,tcp``.

Name handling:

* lookups are case-insensitive and accept either the short id (``ndp``) or
  the display name (``NDP``, ``pHost``, ``NDP (no path penalty)``);
* unknown names raise :class:`UnknownTransportError` (a ``ValueError``)
  listing every registered name;
* the canonical display names are exported as module constants (``NDP``,
  ``TCP``, ``DCTCP``, ``MPTCP``, ``DCQCN``, ``PHOST``,
  ``NDP_NO_PATH_PENALTY``) so no other module needs a protocol-name string
  literal — ``tools/check_transports.py`` enforces exactly that.

Compatibility: a grid point is skippable, not crashable.  Families describe
what they do to the fabric with a
:class:`~repro.transports.capabilities.FamilyTraits`; plan builders call
:func:`require_compatible` per requested protocol, and the sweep CLI turns
the resulting :class:`IncompatibleTransportError` into a deterministic
"skipped: <reason>" report for that grid point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.core.config import NdpConfig
from repro.harness.baseline_networks import (
    DcqcnNetwork,
    DctcpNetwork,
    MptcpNetwork,
    PHostNetwork,
    TcpNetwork,
)
from repro.harness.ndp_network import NdpNetwork
from repro.transports.capabilities import (
    CapabilityError,
    FamilyTraits,
    TransportCapabilities,
)

__all__ = [
    "TransportSpec",
    "UnknownTransportError",
    "IncompatibleTransportError",
    "CapabilityError",
    "FamilyTraits",
    "TransportCapabilities",
    "register",
    "resolve",
    "normalize",
    "build_network",
    "names",
    "displays",
    "specs",
    "registered_names",
    "protocol_literals",
    "incompatibility",
    "require_compatible",
    "NDP",
    "TCP",
    "DCTCP",
    "MPTCP",
    "DCQCN",
    "PHOST",
    "NDP_NO_PATH_PENALTY",
]


class UnknownTransportError(ValueError):
    """A protocol name that no registered transport answers to."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown transport {name!r}; registered transports: "
            f"{', '.join(registered_names())}"
        )
        self.name = name


class IncompatibleTransportError(ValueError):
    """A (protocol, family) grid point that must be skipped, with the reason."""

    def __init__(self, protocol: str, traits: FamilyTraits, reason: str) -> None:
        super().__init__(
            f"{protocol} is incompatible with the {traits.family} family: {reason}"
        )
        self.protocol = protocol
        self.family = traits.family
        self.reason = reason


@dataclass(frozen=True)
class TransportSpec:
    """One registered transport: name, builder, capabilities, default config."""

    #: short id used on the command line (``ndp``, ``dcqcn``, ...)
    name: str
    #: canonical display name used in plan labels and result tables
    display: str
    #: ``*Network`` class with the uniform ``build`` / ``create_flow`` API
    network_cls: type
    capabilities: TransportCapabilities
    #: builds the default config for named variants; ``None`` means the
    #: network class's own default config
    config_factory: Optional[Callable[[], object]] = None
    #: short id of the primary transport this is a variant of, if any
    variant_of: Optional[str] = None
    description: str = ""

    def default_config(self) -> Optional[object]:
        """The config this spec runs with when the caller passes none."""
        return self.config_factory() if self.config_factory is not None else None

    def incompatibility(self, traits: FamilyTraits) -> Optional[str]:
        """Why this transport cannot run under *traits*, or ``None`` if it can."""
        if traits.severs_links and self.capabilities.needs_lossless_fabric:
            return (
                f"{self.display} requires a lossless (PFC) fabric, and severing "
                f"links invalidates the PFC pause graph — upstream queues paused "
                f"across the cut would wedge, mis-simulating the protocol"
            )
        return None

    def build(
        self,
        eventlist,
        topology_cls,
        config: Optional[object] = None,
        seed: int = 1,
        **topology_kwargs,
    ):
        """Build topology + network, applying the spec's default config."""
        if config is None:
            config = self.default_config()
        return self.network_cls.build(
            eventlist, topology_cls, config=config, seed=seed, **topology_kwargs
        )


_REGISTRY: Dict[str, TransportSpec] = {}  # lookup key (lowercased) -> spec
_ORDER: List[TransportSpec] = []  # registration order, primaries and variants


def _lookup_keys(spec: TransportSpec) -> Tuple[str, ...]:
    keys = {spec.name.strip().lower(), spec.display.strip().lower()}
    return tuple(sorted(keys))


def register(spec: TransportSpec) -> TransportSpec:
    """Add *spec* to the registry; both its id and display name resolve to it."""
    for key in _lookup_keys(spec):
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not spec:
            raise ValueError(
                f"transport name {key!r} already registered by {existing.name!r}"
            )
    if spec.variant_of is not None and spec.variant_of.strip().lower() not in _REGISTRY:
        raise ValueError(
            f"{spec.name!r} declares variant_of={spec.variant_of!r} "
            f"which is not registered"
        )
    for key in _lookup_keys(spec):
        _REGISTRY[key] = spec
    _ORDER.append(spec)
    return spec


def resolve(name: str) -> TransportSpec:
    """Look up a transport by id or display name, case-insensitively."""
    if not isinstance(name, str):
        raise UnknownTransportError(name)
    spec = _REGISTRY.get(name.strip().lower())
    if spec is None:
        raise UnknownTransportError(name)
    return spec


def normalize(protocols: Iterable[str]) -> List[str]:
    """Map protocol names (any case, id or display) to canonical display names."""
    return [resolve(name).display for name in protocols]


def build_network(
    name: str,
    eventlist,
    topology_cls,
    config: Optional[object] = None,
    seed: int = 1,
    **topology_kwargs,
):
    """Resolve *name* and build its network over *topology_cls*."""
    return resolve(name).build(
        eventlist, topology_cls, config=config, seed=seed, **topology_kwargs
    )


def specs(include_variants: bool = False) -> List[TransportSpec]:
    """Registered transports in registration order."""
    return [s for s in _ORDER if include_variants or s.variant_of is None]


def names(include_variants: bool = False) -> List[str]:
    """Short ids in registration order."""
    return [s.name for s in specs(include_variants)]


def displays(include_variants: bool = False) -> List[str]:
    """Canonical display names in registration order."""
    return [s.display for s in specs(include_variants)]


def registered_names() -> List[str]:
    """Every name a lookup accepts (ids and displays), for error messages."""
    out: List[str] = []
    for spec in _ORDER:
        for candidate in (spec.name, spec.display):
            if candidate not in out:
                out.append(candidate)
    return out


def protocol_literals() -> List[str]:
    """Lowercased name set for the literal lint (``tools/check_transports.py``)."""
    return sorted({key for spec in _ORDER for key in _lookup_keys(spec)})


def incompatibility(name: str, traits: FamilyTraits) -> Optional[str]:
    """Why *name* cannot run under *traits*, or ``None`` if it can."""
    return resolve(name).incompatibility(traits)


def require_compatible(name: str, traits: FamilyTraits) -> TransportSpec:
    """Resolve *name* and raise :class:`IncompatibleTransportError` if unfit."""
    spec = resolve(name)
    reason = spec.incompatibility(traits)
    if reason is not None:
        raise IncompatibleTransportError(spec.display, traits, reason)
    return spec


# --- built-in transports ---------------------------------------------------------
#
# This block is the one sanctioned home of protocol-name string literals
# (see tools/check_transports.py).  Everything else imports the constants.

NDP = "NDP"
TCP = "TCP"
DCTCP = "DCTCP"
MPTCP = "MPTCP"
DCQCN = "DCQCN"
PHOST = "pHost"
NDP_NO_PATH_PENALTY = "NDP (no path penalty)"


def _register_builtins() -> None:
    register(TransportSpec(
        name="ndp",
        display=NDP,
        network_cls=NdpNetwork,
        capabilities=NdpNetwork.CAPABILITIES,
        description="NDP: packet trimming, per-packet spraying, pull pacing (§3).",
    ))
    register(TransportSpec(
        name="tcp",
        display=TCP,
        network_cls=TcpNetwork,
        capabilities=TcpNetwork.CAPABILITIES,
        description="TCP NewReno over drop-tail switches, per-flow ECMP.",
    ))
    register(TransportSpec(
        name="dctcp",
        display=DCTCP,
        network_cls=DctcpNetwork,
        capabilities=DctcpNetwork.CAPABILITIES,
        description="DCTCP over ECN-marking switches (30-packet threshold).",
    ))
    register(TransportSpec(
        name="mptcp",
        display=MPTCP,
        network_cls=MptcpNetwork,
        capabilities=MptcpNetwork.CAPABILITIES,
        description="MPTCP (LIA), one subflow per ECMP path.",
    ))
    register(TransportSpec(
        name="dcqcn",
        display=DCQCN,
        network_cls=DcqcnNetwork,
        capabilities=DcqcnNetwork.CAPABILITIES,
        description="DCQCN over a lossless PFC fabric with ECN marking.",
    ))
    register(TransportSpec(
        name="phost",
        display=PHOST,
        network_cls=PHostNetwork,
        capabilities=PHostNetwork.CAPABILITIES,
        description="pHost: receiver-driven tokens over shallow buffers.",
    ))
    register(TransportSpec(
        name="ndp_nopenalty",
        display=NDP_NO_PATH_PENALTY,
        network_cls=NdpNetwork,
        capabilities=NdpNetwork.CAPABILITIES,
        config_factory=lambda: NdpConfig(path_penalty=False),
        variant_of="ndp",
        description="NDP with the trimming path penalty disabled (Figure 22).",
    ))


_register_builtins()
