"""DCTCP: Data Center TCP (Alizadeh et al., SIGCOMM 2010).

DCTCP keeps switch queues short by having switches mark packets (ECN) above
a shallow threshold K and having senders reduce their window *in proportion
to the fraction of marked packets*:

    alpha <- (1 - g) * alpha + g * F        (per window of data)
    cwnd  <- cwnd * (1 - alpha / 2)         (at most once per window)

The receiver echoes the CE mark of every data packet on its ACK (the
simulator's per-packet ACKs make the exact ECE state machine of RFC 3168
unnecessary).  The paper runs DCTCP with 200-packet switch buffers and a
30-packet marking threshold; those defaults live in the experiment builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim import units
from repro.transports.tcp import TcpAck, TcpConfig, TcpSink, TcpSrc


@dataclass
class DctcpConfig(TcpConfig):
    """TCP configuration plus DCTCP's estimation gain."""

    #: EWMA gain `g` for the marked fraction estimator
    alpha_gain: float = 1.0 / 16.0
    #: datacenter-appropriate minimum RTO (the paper's DCTCP uses small timers)
    min_rto_ps: int = units.milliseconds(10)
    #: DCTCP requires ECN
    ecn_enabled: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.alpha_gain <= 1.0:
            raise ValueError("alpha_gain must be in (0, 1]")


class DctcpSink(TcpSink):
    """Identical to the TCP sink: CE marks are echoed on every ACK."""


class DctcpSrc(TcpSrc):
    """TCP NewReno sender with DCTCP's proportional ECN response."""

    def __init__(self, *args, **kwargs) -> None:
        config = kwargs.get("config")
        if config is None:
            kwargs["config"] = DctcpConfig()
        super().__init__(*args, **kwargs)
        self.alpha = 0.0
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._window_end = 0
        self._cwnd_reduced_this_window = False

    def _on_ecn_feedback(self, ack: TcpAck) -> None:
        self._acked_in_window += 1
        if ack.ecn_echo:
            self._marked_in_window += 1
            # React immediately (within the window) the first time congestion
            # is signalled, like DCTCP's once-per-RTT window reduction.
            if not self._cwnd_reduced_this_window:
                self._apply_alpha_reduction()
        if ack.ack_seqno >= self._window_end:
            self._end_of_window()

    def _end_of_window(self) -> None:
        if self._acked_in_window > 0:
            fraction = self._marked_in_window / self._acked_in_window
            gain = self.config.alpha_gain
            self.alpha = (1 - gain) * self.alpha + gain * fraction
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._cwnd_reduced_this_window = False
        self._window_end = self.snd_nxt

    def _apply_alpha_reduction(self) -> None:
        self._cwnd_reduced_this_window = True
        # use the latest estimate, bootstrapping from the instantaneous signal
        effective_alpha = self.alpha if self.alpha > 0 else 1.0 / 16.0
        self.cwnd = max(1.0, self.cwnd * (1 - effective_alpha / 2))
        self.ssthresh = max(self.cwnd, 2.0)

    def congestion_fraction(self) -> float:
        """The current smoothed marked-packet fraction (alpha)."""
        return self.alpha
