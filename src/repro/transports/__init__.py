"""Baseline transport protocols the paper compares NDP against.

* :mod:`repro.transports.tcp` — TCP NewReno with per-flow ECMP, the base
  class for the other window-based protocols, plus TCP Fast Open support
  (used in the Figure 8 RPC latency comparison).
* :mod:`repro.transports.dctcp` — DCTCP: ECN-fraction-proportional window
  reduction over ECN-marking switches.
* :mod:`repro.transports.mptcp` — Multipath TCP with LIA coupled congestion
  control, one subflow per path.
* :mod:`repro.transports.dcqcn` — DCQCN: rate-based congestion control with
  CNPs, running over a lossless (PFC) fabric.
* :mod:`repro.transports.phost` — pHost: receiver-driven token protocol
  *without* packet trimming, over ordinary drop-tail switches.
* :mod:`repro.transports.constant_rate` — unresponsive constant-rate senders
  used for the Figure 2 switch-overload study.

The Cut Payload (CP) *switch* lives in :mod:`repro.core.switch` next to the
NDP queue it is contrasted with.
"""

from repro.transports.tcp import TcpConfig, TcpSink, TcpSrc
from repro.transports.dctcp import DctcpConfig, DctcpSink, DctcpSrc
from repro.transports.mptcp import MptcpConfig, MptcpConnection
from repro.transports.dcqcn import DcqcnConfig, DcqcnSink, DcqcnSrc
from repro.transports.phost import PHostConfig, PHostSink, PHostSrc
from repro.transports.constant_rate import ConstantRateSink, ConstantRateSource

__all__ = [
    "TcpConfig",
    "TcpSrc",
    "TcpSink",
    "DctcpConfig",
    "DctcpSrc",
    "DctcpSink",
    "MptcpConfig",
    "MptcpConnection",
    "DcqcnConfig",
    "DcqcnSrc",
    "DcqcnSink",
    "PHostConfig",
    "PHostSrc",
    "PHostSink",
    "ConstantRateSource",
    "ConstantRateSink",
]
