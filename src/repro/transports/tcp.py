"""TCP NewReno over per-flow ECMP.

This is the conventional datacenter transport NDP is contrasted with: a
three-way handshake (optional — TCP Fast Open skips it), slow start from a
small initial window, AIMD congestion avoidance, fast retransmit on three
duplicate ACKs, NewReno partial-ACK recovery and a (Linux-like, 200 ms
minimum) retransmission timeout.  Each flow uses a single path chosen by
hashing the flow id over the available paths, which is what produces the
ECMP collisions of Figure 14.

The congestion window is maintained in packets (the simulator is
packet-granular); DCTCP and MPTCP subclass/compose this sender.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.sim.eventlist import Event, EventList
from repro.sim.logger import FlowRecord
from repro.sim.network import NetworkEndpoint
from repro.sim.packet import Packet, PacketPriority, Route
from repro.sim import units


@dataclass
class TcpConfig:
    """Tunables of the TCP baseline (and defaults for its derivatives)."""

    #: payload bytes per segment (a conventional Ethernet MTU by default)
    mss_bytes: int = 1436
    #: bytes of protocol header per segment on the wire
    header_bytes: int = 64
    #: initial congestion window, packets (RFC 6928)
    initial_window_packets: int = 10
    #: slow-start threshold at connection start, packets
    initial_ssthresh_packets: int = 1_000_000
    #: duplicate ACKs that trigger fast retransmit
    dupack_threshold: int = 3
    #: lower bound on the retransmission timeout (Linux default: 200 ms)
    min_rto_ps: int = units.milliseconds(200)
    #: upper bound on the retransmission timeout
    max_rto_ps: int = units.seconds(2)
    #: perform the three-way handshake before sending data (False = TFO)
    handshake: bool = True
    #: set the ECN-capable codepoint on data packets (DCTCP turns this on)
    ecn_enabled: bool = False
    #: hard cap on the congestion window, packets (models the receive window)
    max_cwnd_packets: int = 1_000
    #: maximum random per-segment send jitter, picoseconds.  Real senders'
    #: transmission times vary slightly with OS scheduling; a deterministic
    #: simulator without this exhibits the pathological phase effects the
    #: paper discusses (two flows locked so that one always wins the last
    #: buffer slot).  300 ns of jitter is far below a packet serialization
    #: time, so it does not change throughput — it only breaks the lockstep.
    send_jitter_ps: int = 300_000

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0:
            raise ValueError("mss_bytes must be positive")
        if self.initial_window_packets < 1:
            raise ValueError("initial window must be at least one packet")
        if self.dupack_threshold < 1:
            raise ValueError("dupack_threshold must be at least 1")
        if self.min_rto_ps <= 0 or self.max_rto_ps < self.min_rto_ps:
            raise ValueError("RTO bounds are inconsistent")

    @property
    def packet_bytes(self) -> int:
        """Full on-the-wire size of a data segment."""
        return self.mss_bytes + self.header_bytes


class TcpPacket(Packet):
    """A TCP data segment (packet-granular sequence numbers)."""

    __slots__ = ("syn", "fin", "payload_bytes", "global_index", "is_retransmit")

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        seqno: int,
        payload_bytes: int,
        header_bytes: int,
        syn: bool = False,
        fin: bool = False,
        ecn_capable: bool = False,
        global_index: Optional[int] = None,
        is_retransmit: bool = False,
    ) -> None:
        size = header_bytes if syn and payload_bytes == 0 else payload_bytes + header_bytes
        super().__init__(
            flow_id=flow_id,
            src=src,
            dst=dst,
            size=size,
            seqno=seqno,
            priority=PacketPriority.LOW,
            ecn_capable=ecn_capable,
        )
        self.syn = syn
        self.fin = fin
        self.payload_bytes = payload_bytes
        self.global_index = global_index if global_index is not None else seqno
        self.is_retransmit = is_retransmit


class TcpAck(Packet):
    """A (cumulative) TCP acknowledgement, possibly carrying an ECN echo."""

    __slots__ = ("ack_seqno", "ecn_echo", "echo_send_time", "syn")

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        ack_seqno: int,
        header_bytes: int = 64,
        ecn_echo: bool = False,
        echo_send_time: int = 0,
        syn: bool = False,
    ) -> None:
        super().__init__(
            flow_id=flow_id,
            src=src,
            dst=dst,
            size=header_bytes,
            seqno=ack_seqno,
            priority=PacketPriority.LOW,
        )
        self.ack_seqno = ack_seqno
        self.ecn_echo = ecn_echo
        self.echo_send_time = echo_send_time
        self.syn = syn

    def is_control(self) -> bool:
        return True


class SequentialDataSource:
    """Hands out packet indices 0..total-1 in order (single-path TCP).

    MPTCP shares one instance of this across all of a connection's subflows,
    which is what turns several single-path senders into one multipath
    transfer.
    """

    def __init__(self, total_packets: int) -> None:
        if total_packets < 1:
            raise ValueError("a transfer needs at least one packet")
        self.total_packets = total_packets
        self._next = 0

    def take_next(self) -> Optional[int]:
        """The next unsent packet index, or ``None`` when all data is taken."""
        if self._next >= self.total_packets:
            return None
        index = self._next
        self._next += 1
        return index

    def exhausted(self) -> bool:
        """True once every packet index has been handed out."""
        return self._next >= self.total_packets

    def remaining(self) -> int:
        """Packets not yet handed to any sender."""
        return self.total_packets - self._next


class TcpSink(NetworkEndpoint):
    """TCP receiver: cumulative ACKs, per-packet ECN echo, delivery record."""

    def __init__(
        self,
        eventlist: EventList,
        flow_id: int,
        node_id: int,
        reverse_route: Route,
        config: Optional[TcpConfig] = None,
        shared_record: Optional[FlowRecord] = None,
        expected_bytes: int = 0,
        on_complete: Optional[Callable[["TcpSink"], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(eventlist, node_id, name or f"tcp-sink-{flow_id}")
        self.flow_id = flow_id
        self.config = config if config is not None else TcpConfig()
        self.reverse_route = reverse_route
        self.record = shared_record if shared_record is not None else FlowRecord(
            flow_id=flow_id, src=-1, dst=node_id, flow_size_bytes=expected_bytes
        )
        if expected_bytes and not self.record.flow_size_bytes:
            self.record.flow_size_bytes = expected_bytes
        self.on_complete = on_complete
        self.rcv_nxt = 0
        self._received: set[int] = set()
        self.acks_sent = 0

    def receive_packet(self, packet: Packet) -> None:
        if not isinstance(packet, TcpPacket):
            raise TypeError(f"TcpSink got unexpected packet {packet!r}")
        if self.record.start_time_ps is None:
            self.record.start_time_ps = self.now()
            self.record.src = packet.src
        if packet.syn and packet.payload_bytes == 0:
            self._send_ack(ecn_echo=False, echo_time=packet.send_time, syn=True)
            return
        if packet.seqno not in self._received:
            self._received.add(packet.seqno)
            self.record.bytes_delivered += packet.payload_bytes
            self.record.packets_delivered += 1
        while self.rcv_nxt in self._received:
            self.rcv_nxt += 1
        self._send_ack(ecn_echo=packet.ecn_ce, echo_time=packet.send_time)
        if (
            self.record.flow_size_bytes
            and self.record.bytes_delivered >= self.record.flow_size_bytes
            and self.record.finish_time_ps is None
        ):
            self.record.finish_time_ps = self.now()
            if self.on_complete is not None:
                self.on_complete(self)

    def _send_ack(self, ecn_echo: bool, echo_time: int, syn: bool = False) -> None:
        ack = TcpAck(
            flow_id=self.flow_id,
            src=self.node_id,
            dst=self.record.src,
            ack_seqno=self.rcv_nxt,
            header_bytes=self.config.header_bytes,
            ecn_echo=ecn_echo,
            echo_send_time=echo_time,
            syn=syn,
        )
        self.acks_sent += 1
        self.inject(ack, self.reverse_route)


class TcpSrc(NetworkEndpoint):
    """TCP NewReno sender over a single (ECMP-chosen) path."""

    def __init__(
        self,
        eventlist: EventList,
        flow_id: int,
        node_id: int,
        dst_node_id: int,
        flow_size_bytes: int,
        route: Route,
        config: Optional[TcpConfig] = None,
        data_source: Optional[SequentialDataSource] = None,
        on_complete: Optional[Callable[["TcpSrc"], None]] = None,
        rng: Optional[random.Random] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(eventlist, node_id, name or f"tcp-src-{flow_id}")
        if flow_size_bytes <= 0:
            raise ValueError("flow size must be positive")
        self.flow_id = flow_id
        self.dst_node_id = dst_node_id
        self.flow_size_bytes = flow_size_bytes
        self.config = config if config is not None else TcpConfig()
        self.route = route
        self.on_complete = on_complete
        self.rng = rng if rng is not None else random.Random(flow_id)

        mss = self.config.mss_bytes
        self.total_packets = (flow_size_bytes + mss - 1) // mss
        self.data_source = (
            data_source if data_source is not None else SequentialDataSource(self.total_packets)
        )

        self.record = FlowRecord(
            flow_id=flow_id, src=node_id, dst=dst_node_id, flow_size_bytes=flow_size_bytes
        )

        # congestion control state (window in packets, possibly fractional)
        self.cwnd = float(self.config.initial_window_packets)
        self.ssthresh = float(self.config.initial_ssthresh_packets)
        self.snd_una = 0  # oldest unacknowledged subflow sequence number
        self.snd_nxt = 0  # next subflow sequence number to send
        self.dupacks = 0
        self.in_recovery = False
        self.recovery_point = 0
        self.rto_backoff = 1
        self._recovery_flight = 0
        self._dupacks_since_rtx = 0

        # RTT estimation (Jacobson)
        self.srtt_ps: Optional[int] = None
        self.rttvar_ps: int = 0

        # mapping subflow seqno -> (global packet index, payload bytes)
        self._segments: Dict[int, tuple[int, int]] = {}
        self._rto_event: Optional[Event] = None
        self._started = False
        self._handshake_done = not self.config.handshake
        self._next_injection_time = 0

        # externally wired congestion-control coupler (used by MPTCP)
        self.coupled_increase: Optional[Callable[["TcpSrc", int], None]] = None

        self.packets_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0

    # --- public API ---------------------------------------------------------------

    def start(self, at_time_ps: Optional[int] = None) -> None:
        """Schedule connection establishment (or first data for TFO)."""
        when = self.now() if at_time_ps is None else at_time_ps
        self.eventlist.schedule(when, self._begin)

    @property
    def complete(self) -> bool:
        """True when every handed-out segment has been cumulatively ACKed."""
        return self.data_source.exhausted() and self.snd_una >= self.snd_nxt and self._started

    def packets_in_flight(self) -> int:
        """Outstanding (sent but unacknowledged) segments."""
        return self.snd_nxt - self.snd_una

    def current_rto_ps(self) -> int:
        """Current retransmission timeout with backoff applied."""
        if self.srtt_ps is None:
            base = self.config.min_rto_ps
        else:
            base = self.srtt_ps + 4 * self.rttvar_ps
        rto = max(self.config.min_rto_ps, base) * self.rto_backoff
        return min(rto, self.config.max_rto_ps)

    # --- connection startup ---------------------------------------------------------

    def _begin(self) -> None:
        if self._started:
            return
        self._started = True
        self.record.start_time_ps = self.now()
        if self.config.handshake:
            syn = TcpPacket(
                flow_id=self.flow_id,
                src=self.node_id,
                dst=self.dst_node_id,
                seqno=0,
                payload_bytes=0,
                header_bytes=self.config.header_bytes,
                syn=True,
            )
            self.packets_sent += 1
            self._arm_rto()
            self.inject(syn, self.route)
        else:
            self._try_send()

    # --- sending --------------------------------------------------------------------

    def _try_send(self) -> None:
        if not self._handshake_done:
            return
        while self.packets_in_flight() < int(self.cwnd):
            index = self.data_source.take_next()
            if index is None:
                break
            payload = self._payload_for_index(index)
            seqno = self.snd_nxt
            self.snd_nxt += 1
            self._segments[seqno] = (index, payload)
            self._send_segment(seqno, retransmit=False)

    def _payload_for_index(self, index: int) -> int:
        mss = self.config.mss_bytes
        if index < self.data_source.total_packets - 1:
            return mss
        remainder = self.flow_size_bytes - (self.data_source.total_packets - 1) * mss
        return remainder if remainder > 0 else mss

    def _send_segment(self, seqno: int, retransmit: bool) -> None:
        index, payload = self._segments[seqno]
        packet = TcpPacket(
            flow_id=self.flow_id,
            src=self.node_id,
            dst=self.dst_node_id,
            seqno=seqno,
            payload_bytes=payload,
            header_bytes=self.config.header_bytes,
            ecn_capable=self.config.ecn_enabled,
            global_index=index,
            is_retransmit=retransmit,
        )
        self.packets_sent += 1
        if retransmit:
            self.retransmissions += 1
            self.record.retransmissions += 1
        if self._rto_event is None:
            self._arm_rto()
        self._inject_with_jitter(packet)

    def _inject_with_jitter(self, packet: TcpPacket) -> None:
        """Hand the segment to the NIC after a tiny randomized delay.

        The jitter models OS-scheduling variability; injections stay strictly
        ordered per flow so it never reorders a flow's own segments.
        """
        jitter = self.config.send_jitter_ps
        offset = self.rng.randint(0, jitter) if jitter > 0 else 0
        when = max(self.now() + offset, self._next_injection_time + 1)
        self._next_injection_time = when
        self.eventlist.schedule(when, self.inject, packet, self.route)

    # --- receiving ACKs -----------------------------------------------------------------

    def receive_packet(self, packet: Packet) -> None:
        if not isinstance(packet, TcpAck):
            raise TypeError(f"TcpSrc got unexpected packet {packet!r}")
        if packet.syn and not self._handshake_done:
            self._handshake_done = True
            self._cancel_rto()
            self._update_rtt(packet.echo_send_time)
            self._try_send()
            return
        self._update_rtt(packet.echo_send_time)
        self._on_ecn_feedback(packet)
        ack_no = packet.ack_seqno
        if ack_no > self.snd_una:
            newly_acked = ack_no - self.snd_una
            self.snd_una = ack_no
            self.dupacks = 0
            self.rto_backoff = 1
            self.record.packets_delivered += newly_acked
            if self.in_recovery:
                if self.snd_una >= self.recovery_point:
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                else:
                    # NewReno partial ACK: retransmit the next hole straight away
                    self._send_segment(self.snd_una, retransmit=True)
            else:
                self._increase_window(newly_acked)
            self._cancel_rto()
            if self.packets_in_flight() > 0:
                self._arm_rto()
            if self.complete:
                self._finish()
                return
            self._try_send()
        elif ack_no == self.snd_una and self.packets_in_flight() > 0:
            self.dupacks += 1
            if self.dupacks == self.config.dupack_threshold and not self.in_recovery:
                self._enter_fast_retransmit()
            elif self.in_recovery:
                # window inflation during recovery (bounded by the receive window)
                self.cwnd = min(self.cwnd + 1, self.config.max_cwnd_packets)
                self._dupacks_since_rtx += 1
                if self._dupacks_since_rtx > max(self._recovery_flight, 8):
                    # every packet that was in flight has been dup-ACKed and the
                    # hole is still there: the retransmission itself was lost
                    # (Linux detects this too); resend it rather than stalling
                    # until the RTO.
                    self._dupacks_since_rtx = 0
                    self._send_segment(self.snd_una, retransmit=True)
                self._try_send()

    def _increase_window(self, newly_acked: int) -> None:
        if self.coupled_increase is not None and self.cwnd >= self.ssthresh:
            self.coupled_increase(self, newly_acked)
        elif self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + newly_acked, self.config.max_cwnd_packets)
        else:
            self.cwnd = min(
                self.cwnd + newly_acked / self.cwnd, self.config.max_cwnd_packets
            )

    def _on_ecn_feedback(self, ack: TcpAck) -> None:
        """Hook for DCTCP; plain TCP ignores ECN echoes."""

    def _enter_fast_retransmit(self) -> None:
        self.fast_retransmits += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh + self.config.dupack_threshold
        self.in_recovery = True
        self.recovery_point = self.snd_nxt
        self._recovery_flight = self.packets_in_flight()
        self._dupacks_since_rtx = 0
        self._send_segment(self.snd_una, retransmit=True)
        # while in recovery, fall back on a fast loss-probe timer rather than
        # the full (200 ms minimum) RTO if the retransmission itself is lost
        self._arm_rto()

    # --- timers -------------------------------------------------------------------------

    def _arm_rto(self) -> None:
        self._cancel_rto()
        timeout = self.current_rto_ps()
        if self.in_recovery and self.srtt_ps is not None:
            # loss-probe behaviour (a la Linux RACK/TLP): once fast recovery
            # has started, a lost retransmission is detected on an RTT
            # timescale instead of stalling for the conservative minimum RTO.
            # Pre-recovery tail losses still pay the full RTO, as real stacks
            # (and the paper's Figure 9 TCP results) do.
            timeout = min(timeout, max(4 * self.srtt_ps, units.milliseconds(2)))
        self._rto_event = self.eventlist.schedule_in(timeout, self._handle_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _handle_rto(self) -> None:
        self._rto_event = None
        if not self._handshake_done:
            # SYN lost: resend it
            self.timeouts += 1
            self.rto_backoff = min(self.rto_backoff * 2, 64)
            self._begin_retransmit_syn()
            return
        if self.packets_in_flight() == 0:
            return
        self.timeouts += 1
        self.record.rtx_from_timeout += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False
        self.rto_backoff = min(self.rto_backoff * 2, 64)
        self._send_segment(self.snd_una, retransmit=True)
        self._arm_rto()

    def _begin_retransmit_syn(self) -> None:
        syn = TcpPacket(
            flow_id=self.flow_id,
            src=self.node_id,
            dst=self.dst_node_id,
            seqno=0,
            payload_bytes=0,
            header_bytes=self.config.header_bytes,
            syn=True,
        )
        self.packets_sent += 1
        self._arm_rto()
        self.inject(syn, self.route)

    def _update_rtt(self, echo_send_time: int) -> None:
        if echo_send_time <= 0:
            return
        sample = self.now() - echo_send_time
        if sample <= 0:
            return
        if self.srtt_ps is None:
            self.srtt_ps = sample
            self.rttvar_ps = sample // 2
        else:
            self.rttvar_ps = int(0.75 * self.rttvar_ps + 0.25 * abs(self.srtt_ps - sample))
            self.srtt_ps = int(0.875 * self.srtt_ps + 0.125 * sample)

    # --- completion --------------------------------------------------------------------------

    def _finish(self) -> None:
        if self.record.finish_time_ps is not None:
            return
        self.record.finish_time_ps = self.now()
        self._cancel_rto()
        if self.on_complete is not None:
            self.on_complete(self)
