"""Multipath TCP with LIA coupled congestion control.

The paper's high-throughput baseline (Raiciu et al., SIGCOMM 2011) opens one
TCP subflow per path (eight subflows in the paper's FatTree runs) and couples
their congestion-avoidance increases with the Linked-Increases Algorithm
(LIA):

    per ACK on subflow r:  w_r += min( a / w_total , 1 / w_r )

    a = w_total * max_r(w_r / rtt_r^2) / ( sum_r(w_r / rtt_r) )^2

so the aggregate is no more aggressive than a single TCP flow on the best
path, while traffic shifts away from congested paths.  Data is striped
dynamically: every subflow pulls the next unsent packet of the connection
whenever its own window allows, so a slow subflow simply carries less.

Simplifications relative to a full MPTCP stack (documented in DESIGN.md):
no opportunistic reinjection of data stranded on a stalled subflow, and no
receive-window coupling.  Neither affects the macroscopic behaviours the
paper measures (aggregate throughput, ECMP-collision avoidance, incast FCT).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.sim import units
from repro.sim.eventlist import EventList
from repro.sim.logger import FlowRecord
from repro.sim.packet import Route
from repro.transports.tcp import SequentialDataSource, TcpConfig, TcpSink, TcpSrc


@dataclass
class MptcpConfig(TcpConfig):
    """TCP configuration plus the number of subflows to open."""

    #: subflows per connection (the paper uses 8 on a FatTree)
    subflows: int = 8
    #: datacenter-style minimum RTO for the subflows
    min_rto_ps: int = units.milliseconds(10)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.subflows < 1:
            raise ValueError("an MPTCP connection needs at least one subflow")


class MptcpSubflow(TcpSrc):
    """A TCP sender whose congestion-avoidance increase is LIA-coupled."""


class MptcpConnection:
    """An MPTCP connection: several coupled subflows sharing one transfer.

    The connection object owns the shared
    :class:`~repro.transports.tcp.SequentialDataSource` (the un-sent part of
    the transfer), a shared receiver-side :class:`FlowRecord`, and the LIA
    coupling across subflows.  Subflow senders/sinks are ordinary TCP
    endpoints wired by :meth:`build`.
    """

    def __init__(
        self,
        eventlist: EventList,
        flow_id: int,
        src_node: int,
        dst_node: int,
        flow_size_bytes: int,
        config: Optional[MptcpConfig] = None,
        on_complete: Optional[Callable[["MptcpConnection"], None]] = None,
    ) -> None:
        if flow_size_bytes <= 0:
            raise ValueError("flow size must be positive")
        self.eventlist = eventlist
        self.flow_id = flow_id
        self.src_node = src_node
        self.dst_node = dst_node
        self.flow_size_bytes = flow_size_bytes
        self.config = config if config is not None else MptcpConfig()
        self.on_complete = on_complete
        mss = self.config.mss_bytes
        self.total_packets = (flow_size_bytes + mss - 1) // mss
        self.data_source = SequentialDataSource(self.total_packets)
        self.record = FlowRecord(
            flow_id=flow_id,
            src=src_node,
            dst=dst_node,
            flow_size_bytes=flow_size_bytes,
        )
        self.subflows: List[MptcpSubflow] = []
        self.sinks: List[TcpSink] = []
        self._completed = False

    # --- wiring -------------------------------------------------------------------

    def build(
        self,
        forward_paths: Sequence[Route],
        reverse_paths: Sequence[Route],
        rng: Optional[random.Random] = None,
    ) -> None:
        """Create one subflow per chosen path.

        ``forward_paths[i]`` must end at nothing (fabric route); this method
        appends the per-subflow sink, mirroring how the harness wires NDP.
        If more subflows are requested than paths exist, paths are reused
        round-robin (as real MPTCP does when subflows outnumber ECMP paths).
        """
        if not forward_paths or not reverse_paths:
            raise ValueError("MPTCP needs at least one forward and reverse path")
        rng = rng if rng is not None else random.Random(self.flow_id)
        count = self.config.subflows
        chosen = [forward_paths[i % len(forward_paths)] for i in range(count)]
        reverse = [reverse_paths[i % len(reverse_paths)] for i in range(count)]
        for index, (fwd, rev) in enumerate(zip(chosen, reverse)):
            subflow_id = self.flow_id * 1000 + index
            src = MptcpSubflow(
                eventlist=self.eventlist,
                flow_id=subflow_id,
                node_id=self.src_node,
                dst_node_id=self.dst_node,
                flow_size_bytes=self.flow_size_bytes,
                route=fwd,  # finalized below once the sink exists
                config=self.config,
                data_source=self.data_source,
                on_complete=self._subflow_finished,
            )
            sink = TcpSink(
                eventlist=self.eventlist,
                flow_id=subflow_id,
                node_id=self.dst_node,
                reverse_route=rev.extended(src),
                config=self.config,
                shared_record=self.record,
                expected_bytes=self.flow_size_bytes,
                on_complete=self._receiver_finished,
            )
            src.route = fwd.extended(sink)
            src.coupled_increase = self._lia_increase
            self.subflows.append(src)
            self.sinks.append(sink)

    def start(self, at_time_ps: Optional[int] = None) -> None:
        """Start every subflow (they share the transfer from the first byte)."""
        if not self.subflows:
            raise RuntimeError("call build() before start()")
        for subflow in self.subflows:
            subflow.start(at_time_ps)

    # --- LIA coupling -----------------------------------------------------------------

    def _lia_increase(self, subflow: TcpSrc, newly_acked: int) -> None:
        windows = [s.cwnd for s in self.subflows]
        rtts = [max(s.srtt_ps or units.microseconds(10), 1) for s in self.subflows]
        total_window = sum(windows)
        if total_window <= 0:
            return
        best = max(w / (rtt * rtt) for w, rtt in zip(windows, rtts))
        denominator = sum(w / rtt for w, rtt in zip(windows, rtts)) ** 2
        if denominator <= 0:
            return
        aggressiveness = total_window * best / denominator
        increase = min(aggressiveness / total_window, 1.0 / max(subflow.cwnd, 1.0))
        subflow.cwnd = min(
            subflow.cwnd + increase * newly_acked, self.config.max_cwnd_packets
        )

    # --- state ---------------------------------------------------------------------------

    @property
    def complete(self) -> bool:
        """True once the receiver has the whole transfer."""
        return self.record.finish_time_ps is not None

    def aggregate_cwnd(self) -> float:
        """Sum of the subflows' congestion windows (diagnostics)."""
        return sum(s.cwnd for s in self.subflows)

    def total_retransmissions(self) -> int:
        """Retransmissions across all subflows."""
        return sum(s.retransmissions for s in self.subflows)

    def _receiver_finished(self, _sink: TcpSink) -> None:
        if not self._completed:
            self._completed = True
            if self.on_complete is not None:
                self.on_complete(self)

    def _subflow_finished(self, _subflow: TcpSrc) -> None:
        """Per-subflow completion is uninteresting; connection completion is
        signalled by the shared receiver record."""
