"""Unresponsive constant-rate senders (the Figure 2 workload).

Figure 2 of the paper studies the *switch* service model in isolation: many
unresponsive flows converge on one 10 Gb/s output port and the metric is the
fraction of the ideal fair-share goodput each flow's receiver actually gets.
The senders deliberately perform no congestion control — that is the point —
so they are modelled here as simple paced packet generators.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.sim import units
from repro.sim.eventlist import EventList
from repro.sim.logger import FlowRecord
from repro.sim.network import NetworkEndpoint
from repro.sim.packet import Packet, PacketPriority, Route


class ConstantRatePacket(Packet):
    """A data packet from an unresponsive source."""

    __slots__ = ("payload_bytes",)

    def __init__(self, flow_id, src, dst, seqno, payload_bytes, header_bytes):
        super().__init__(
            flow_id=flow_id,
            src=src,
            dst=dst,
            size=payload_bytes + header_bytes,
            seqno=seqno,
            priority=PacketPriority.LOW,
        )
        self.payload_bytes = payload_bytes


class ConstantRateSource(NetworkEndpoint):
    """Sends fixed-size packets at a fixed rate forever (or until stopped)."""

    def __init__(
        self,
        eventlist: EventList,
        flow_id: int,
        node_id: int,
        dst_node_id: int,
        route: Route,
        rate_bps: int,
        packet_bytes: int = 9000,
        header_bytes: int = 64,
        jitter_fraction: float = 0.0,
        rng: Optional[random.Random] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(eventlist, node_id, name or f"cbr-src-{flow_id}")
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if packet_bytes <= header_bytes:
            raise ValueError("packet must be larger than its header")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.flow_id = flow_id
        self.dst_node_id = dst_node_id
        self.route = route
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.header_bytes = header_bytes
        self.interval_ps = units.serialization_time_ps(packet_bytes, rate_bps)
        #: per-packet inter-departure jitter as a fraction of the interval.
        #: Real traffic sources are never picosecond-periodic; a little jitter
        #: prevents the artificial lockstep a deterministic simulator would
        #: otherwise impose on perfectly synchronized unresponsive senders.
        self.jitter_fraction = jitter_fraction
        self.rng = rng if rng is not None else random.Random(flow_id)
        self._seqno = 0
        self._running = False
        self.packets_sent = 0

    def start(self, at_time_ps: Optional[int] = None) -> None:
        """Begin transmitting at *at_time_ps* (now by default)."""
        when = self.now() if at_time_ps is None else at_time_ps
        self._running = True
        self.eventlist.schedule(when, self._send_next)

    def stop(self) -> None:
        """Stop generating packets after the next tick."""
        self._running = False

    def _send_next(self) -> None:
        if not self._running:
            return
        packet = ConstantRatePacket(
            self.flow_id,
            self.node_id,
            self.dst_node_id,
            self._seqno,
            self.packet_bytes - self.header_bytes,
            self.header_bytes,
        )
        self._seqno += 1
        self.packets_sent += 1
        self.inject(packet, self.route)
        interval = self.interval_ps
        if self.jitter_fraction:
            spread = self.jitter_fraction * interval
            interval = max(1, int(interval + self.rng.uniform(-spread, spread)))
        self.eventlist.schedule_in(interval, self._send_next)

    def receive_packet(self, packet: Packet) -> None:  # pragma: no cover - sources receive nothing
        raise TypeError("ConstantRateSource does not expect inbound packets")


class ConstantRateSink(NetworkEndpoint):
    """Counts goodput: payload bytes of *untrimmed* packets that arrive."""

    def __init__(self, eventlist: EventList, flow_id: int, node_id: int,
                 name: Optional[str] = None) -> None:
        super().__init__(eventlist, node_id, name or f"cbr-sink-{flow_id}")
        self.flow_id = flow_id
        self.record = FlowRecord(flow_id=flow_id, src=-1, dst=node_id, flow_size_bytes=0)
        self.headers_received = 0

    def receive_packet(self, packet: Packet) -> None:
        if self.record.start_time_ps is None:
            self.record.start_time_ps = self.now()
            self.record.src = packet.src
        if packet.is_header_only:
            self.headers_received += 1
            self.record.headers_received += 1
            return
        payload = getattr(packet, "payload_bytes", packet.size)
        self.record.bytes_delivered += payload
        self.record.packets_delivered += 1

    def goodput_bps(self, duration_ps: int) -> float:
        """Delivered payload rate over *duration_ps*."""
        if duration_ps <= 0:
            raise ValueError("duration must be positive")
        return self.record.bytes_delivered * 8 * units.SECOND / duration_ps
