"""pHost: a receiver-driven transport *without* packet trimming.

pHost (Gao et al., CoNEXT 2015) is the "who needs packet trimming?" baseline
of §6.2: like NDP it sprays packets across paths and lets the receiver clock
transmissions with paced tokens, but it runs over plain drop-tail switches.
With the paper's tiny 8-packet buffers, the first-RTT burst of an incast is
mostly *dropped* rather than trimmed, the receiver has no idea which packets
were lost, and recovery falls back on timeouts — which is why pHost's large
incasts take seconds where NDP takes milliseconds, and why its permutation
utilization saturates around 70%.

Protocol sketch implemented here:

* the sender bursts its first window at line rate (free tokens), then sends
  one packet per received token — unsent data first, then the oldest
  unacknowledged packet;
* the receiver ACKs every arrival and issues tokens from a per-host paced
  token queue, keeping a bounded number of tokens outstanding per flow;
* if a flow has missing packets and nothing has arrived for
  ``retransmission_timeout``, the receiver assumes the corresponding packets
  (or their tokens) were dropped and issues fresh tokens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.core.path_manager import PathManager
from repro.sim import units
from repro.sim.eventlist import Event, EventList
from repro.sim.logger import FlowRecord
from repro.sim.network import NetworkEndpoint
from repro.sim.packet import Packet, PacketPriority, Route


@dataclass
class PHostConfig:
    """pHost parameters."""

    mss_bytes: int = 8936
    header_bytes: int = 64
    #: free tokens: packets the sender may burst in the first RTT
    initial_window_packets: int = 30
    #: receiver-side timeout after which missing packets get fresh tokens.
    #: pHost cannot use NDP-style aggressive timers: with drop-tail switches a
    #: short timeout floods the network with duplicates, so the default is a
    #: conservative couple of milliseconds.
    retransmission_timeout_ps: int = units.milliseconds(2)
    #: sender-side timeout for retrying when the whole first burst (the
    #: implicit RTS) was lost and the receiver does not even know the flow
    #: exists; doubles on every retry.
    sender_timeout_ps: int = units.milliseconds(1)
    #: cap on tokens outstanding (unanswered) per flow
    max_outstanding_tokens: int = 8

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0:
            raise ValueError("mss_bytes must be positive")
        if self.initial_window_packets < 1:
            raise ValueError("initial window must be at least one packet")

    @property
    def packet_bytes(self) -> int:
        """On-the-wire size of a full data packet."""
        return self.mss_bytes + self.header_bytes


class PHostDataPacket(Packet):
    """A pHost data packet."""

    __slots__ = ("payload_bytes",)

    def __init__(self, flow_id, src, dst, seqno, payload_bytes, header_bytes):
        super().__init__(
            flow_id=flow_id,
            src=src,
            dst=dst,
            size=payload_bytes + header_bytes,
            seqno=seqno,
            priority=PacketPriority.LOW,
        )
        self.payload_bytes = payload_bytes


class PHostAck(Packet):
    """Acknowledges one data packet."""

    __slots__ = ()

    def __init__(self, flow_id, src, dst, seqno, header_bytes=64):
        super().__init__(flow_id=flow_id, src=src, dst=dst, size=header_bytes, seqno=seqno)

    def is_control(self) -> bool:
        return True


class PHostToken(Packet):
    """A token allowing the sender to transmit one more packet."""

    __slots__ = ()

    def __init__(self, flow_id, src, dst, seqno, header_bytes=64):
        super().__init__(flow_id=flow_id, src=src, dst=dst, size=header_bytes, seqno=seqno)

    def is_control(self) -> bool:
        return True


class PHostTokenPacer:
    """Per-receiving-host token pacer (analogous to NDP's pull pacer)."""

    def __init__(self, eventlist: EventList, link_rate_bps: int, packet_bytes: int) -> None:
        self.eventlist = eventlist
        self.token_interval_ps = units.serialization_time_ps(packet_bytes, link_rate_bps)
        self._pending: Dict[int, int] = {}
        self._sinks: Dict[int, "PHostSink"] = {}
        self._order: list[int] = []
        self._next_allowed = 0
        self._scheduled: Optional[Event] = None
        self.tokens_sent = 0

    def request_tokens(self, sink: "PHostSink", count: int) -> None:
        """Queue *count* token grants for *sink*'s flow."""
        if count <= 0:
            return
        flow_id = sink.flow_id
        self._sinks[flow_id] = sink
        if flow_id not in self._order:
            self._order.append(flow_id)
        self._pending[flow_id] = self._pending.get(flow_id, 0) + count
        self._schedule()

    def purge(self, flow_id: int) -> None:
        """Drop queued tokens for a finished flow."""
        self._pending.pop(flow_id, None)

    def _schedule(self) -> None:
        if self._scheduled is not None or not any(self._pending.values()):
            return
        when = max(self.eventlist.now(), self._next_allowed)
        self._scheduled = self.eventlist.schedule(when, self._send_one)

    def _send_one(self) -> None:
        self._scheduled = None
        flow_id = None
        while self._order:
            candidate = self._order.pop(0)
            if self._pending.get(candidate, 0) > 0:
                flow_id = candidate
                self._order.append(candidate)
                break
        if flow_id is None:
            return
        self._pending[flow_id] -= 1
        self._next_allowed = self.eventlist.now() + self.token_interval_ps
        self.tokens_sent += 1
        self._sinks[flow_id].emit_token()
        self._schedule()


class PHostSink(NetworkEndpoint):
    """pHost receiver: ACKs arrivals, paces tokens, times out losses."""

    def __init__(
        self,
        eventlist: EventList,
        flow_id: int,
        node_id: int,
        pacer: PHostTokenPacer,
        reverse_routes: Sequence[Route],
        config: Optional[PHostConfig] = None,
        rng: Optional[random.Random] = None,
        on_complete: Optional[Callable[["PHostSink"], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(eventlist, node_id, name or f"phost-sink-{flow_id}")
        self.flow_id = flow_id
        self.config = config if config is not None else PHostConfig()
        self.pacer = pacer
        self.on_complete = on_complete
        self.rng = rng if rng is not None else random.Random(flow_id)
        self.reverse_paths = PathManager(reverse_routes, rng=self.rng, penalize=False)
        self.record = FlowRecord(flow_id=flow_id, src=-1, dst=node_id, flow_size_bytes=0)
        self.src_node_id = -1
        self._expected_packets: Optional[int] = None
        self._received: set[int] = set()
        self._tokens_outstanding = 0
        self._token_counter = 0
        self._timeout_event: Optional[Event] = None
        self.tokens_emitted = 0
        self.timeout_rounds = 0

    def expect(self, src_node_id: int, flow_size_bytes: int, total_packets: int) -> None:
        """Wire the expected transfer size (set by the connection helper)."""
        self.src_node_id = src_node_id
        self.record.src = src_node_id
        self.record.flow_size_bytes = flow_size_bytes
        self._expected_packets = total_packets

    @property
    def complete(self) -> bool:
        """True once the whole transfer arrived."""
        return (
            self._expected_packets is not None
            and len(self._received) >= self._expected_packets
        )

    def remaining_packets(self) -> int:
        """Packets still missing."""
        if self._expected_packets is None:
            return 0
        return self._expected_packets - len(self._received)

    def receive_packet(self, packet: Packet) -> None:
        if not isinstance(packet, PHostDataPacket):
            raise TypeError(f"PHostSink got unexpected packet {packet!r}")
        if self.record.start_time_ps is None:
            self.record.start_time_ps = self.now()
        first_arrival = not self._received and self.record.packets_delivered == 0
        if packet.seqno not in self._received:
            self._received.add(packet.seqno)
            self.record.bytes_delivered += packet.payload_bytes
            self.record.packets_delivered += 1
        if self._tokens_outstanding > 0:
            self._tokens_outstanding -= 1
        if first_arrival:
            # The receiver only learns of the flow's existence from its first
            # arriving packet; only then can it start timing out losses.
            self._arm_timeout()
        self.inject(
            PHostAck(self.flow_id, self.node_id, packet.src, packet.seqno,
                     header_bytes=self.config.header_bytes),
            self.reverse_paths.next_route(),
        )
        if self.complete:
            self._finish()
            return
        self._request_more_tokens()
        self._arm_timeout()

    def _request_more_tokens(self) -> None:
        want = self.remaining_packets() - self._tokens_outstanding
        allowed = self.config.max_outstanding_tokens - self._tokens_outstanding
        grant = min(want, allowed)
        if grant > 0:
            self._tokens_outstanding += grant
            self.pacer.request_tokens(self, grant)

    def emit_token(self) -> None:
        """Called by the pacer: actually send one token to the sender."""
        if self.complete:
            return
        self._token_counter += 1
        self.tokens_emitted += 1
        self.inject(
            PHostToken(self.flow_id, self.node_id, self.src_node_id, self._token_counter,
                       header_bytes=self.config.header_bytes),
            self.reverse_paths.next_route(),
        )

    def _arm_timeout(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
        self._timeout_event = self.eventlist.schedule_in(
            self.config.retransmission_timeout_ps, self._handle_timeout
        )

    def _handle_timeout(self) -> None:
        self._timeout_event = None
        if self.complete:
            return
        # nothing arrived for a while: assume outstanding tokens (or the data
        # they elicited) were lost and issue a fresh batch
        self.timeout_rounds += 1
        self.record.rtx_from_timeout += 1
        self._tokens_outstanding = 0
        self._request_more_tokens()
        self._arm_timeout()

    def _finish(self) -> None:
        if self.record.finish_time_ps is None:
            self.record.finish_time_ps = self.now()
            if self._timeout_event is not None:
                self._timeout_event.cancel()
            self.pacer.purge(self.flow_id)
            if self.on_complete is not None:
                self.on_complete(self)


class PHostSrc(NetworkEndpoint):
    """pHost sender: free first-RTT burst, then strictly token-clocked."""

    def __init__(
        self,
        eventlist: EventList,
        flow_id: int,
        node_id: int,
        dst_node_id: int,
        flow_size_bytes: int,
        routes: Sequence[Route],
        config: Optional[PHostConfig] = None,
        rng: Optional[random.Random] = None,
        on_complete: Optional[Callable[["PHostSrc"], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(eventlist, node_id, name or f"phost-src-{flow_id}")
        if flow_size_bytes <= 0:
            raise ValueError("flow size must be positive")
        self.flow_id = flow_id
        self.dst_node_id = dst_node_id
        self.flow_size_bytes = flow_size_bytes
        self.config = config if config is not None else PHostConfig()
        self.rng = rng if rng is not None else random.Random(flow_id)
        self.on_complete = on_complete
        # pHost sprays per packet at random (switch-style packet spraying)
        self.paths = PathManager(routes, rng=self.rng, penalize=False, mode="random")
        mss = self.config.mss_bytes
        self.total_packets = (flow_size_bytes + mss - 1) // mss
        self.record = FlowRecord(
            flow_id=flow_id, src=node_id, dst=dst_node_id, flow_size_bytes=flow_size_bytes
        )
        self.sink: Optional[PHostSink] = None
        self._next_new = 0
        self._acked: set[int] = set()
        self._rtx_pointer = 0
        self._started = False
        self._heard_from_receiver = False
        self._sender_timer: Optional[Event] = None
        self._sender_timeout_ps = self.config.sender_timeout_ps
        self.packets_sent = 0
        self.tokens_received = 0
        self.rts_retries = 0

    def connect(self, sink: PHostSink) -> None:
        """Associate the sender with its sink."""
        self.sink = sink
        sink.expect(self.node_id, self.flow_size_bytes, self.total_packets)

    def set_destination_routes(self, routes: Sequence[Route]) -> None:
        """Install forward routes ending at the sink."""
        self.paths.set_routes(routes)

    def start(self, at_time_ps: Optional[int] = None) -> None:
        """Schedule the free first-RTT burst."""
        when = self.now() if at_time_ps is None else at_time_ps
        self.eventlist.schedule(when, self._send_burst)

    @property
    def complete(self) -> bool:
        """True when every packet has been acknowledged."""
        return len(self._acked) >= self.total_packets

    def _send_burst(self) -> None:
        if self._started:
            return
        self._started = True
        self.record.start_time_ps = self.now()
        for _ in range(min(self.config.initial_window_packets, self.total_packets)):
            self._send_packet(self._next_new)
            self._next_new += 1
        self._arm_sender_timer()

    def _arm_sender_timer(self) -> None:
        if self._sender_timer is not None:
            self._sender_timer.cancel()
        self._sender_timer = self.eventlist.schedule_in(
            self._sender_timeout_ps, self._sender_timeout
        )

    def _sender_timeout(self) -> None:
        """The whole burst (and thus the implicit RTS) may have been lost."""
        self._sender_timer = None
        if self._heard_from_receiver or self.complete:
            return
        self.rts_retries += 1
        self.record.rtx_from_timeout += 1
        self._send_packet(0)
        self._sender_timeout_ps = min(self._sender_timeout_ps * 2, units.milliseconds(64))
        self._arm_sender_timer()

    def _send_packet(self, seqno: int) -> None:
        payload = self._payload_for(seqno)
        packet = PHostDataPacket(
            self.flow_id, self.node_id, self.dst_node_id, seqno, payload,
            self.config.header_bytes,
        )
        self.packets_sent += 1
        self.inject(packet, self.paths.next_route())

    def _payload_for(self, seqno: int) -> int:
        mss = self.config.mss_bytes
        if seqno < self.total_packets - 1:
            return mss
        remainder = self.flow_size_bytes - (self.total_packets - 1) * mss
        return remainder if remainder > 0 else mss

    def receive_packet(self, packet: Packet) -> None:
        if not self._heard_from_receiver and isinstance(packet, (PHostAck, PHostToken)):
            self._heard_from_receiver = True
            if self._sender_timer is not None:
                self._sender_timer.cancel()
                self._sender_timer = None
        if isinstance(packet, PHostAck):
            if packet.seqno not in self._acked:
                self._acked.add(packet.seqno)
                self.record.packets_delivered += 1
                self.record.bytes_delivered += self._payload_for(packet.seqno)
            if self.complete and self.record.finish_time_ps is None:
                self.record.finish_time_ps = self.now()
                if self.on_complete is not None:
                    self.on_complete(self)
        elif isinstance(packet, PHostToken):
            self.tokens_received += 1
            self._send_for_token()
        else:
            raise TypeError(f"PHostSrc got unexpected packet {packet!r}")

    def _send_for_token(self) -> None:
        if self._next_new < self.total_packets:
            self._send_packet(self._next_new)
            self._next_new += 1
            return
        # no new data: retransmit unacknowledged packets, rotating through
        # them so successive tokens do not all resend the same packet
        for _ in range(self.total_packets):
            seqno = self._rtx_pointer
            self._rtx_pointer = (self._rtx_pointer + 1) % self.total_packets
            if seqno not in self._acked:
                self.record.retransmissions += 1
                self._send_packet(seqno)
                return
