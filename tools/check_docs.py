#!/usr/bin/env python3
"""Link/reference checker for the repository's markdown documentation.

Checks, without any network access:

1. every relative markdown link (``[text](path)``) in the repo's ``*.md``
   files resolves to an existing file or directory (anchors are stripped;
   ``http(s)://`` / ``mailto:`` links are skipped);
2. every experiment name in the CLI catalogue (``repro.cli.EXPERIMENTS``)
   is mentioned in the README's figure index, so the front door can never
   silently fall out of date;
3. every markdown anchor referenced as ``path#anchor`` exists as a heading
   in the target file (GitHub-style slugs);
4. every experiment family in ``repro.harness.figures.FIGURE_PLANS`` is
   covered by the experiments handbook (``docs/experiments.md``) *and* the
   README figure index, and the two registries (``FIGURE_PLANS`` /
   ``EXPERIMENTS``) agree — the experiment catalogue cannot rot;
5. every figure registered in the results-to-figures pipeline
   (``repro.analysis.registry.REGISTERED_FIGURES``) appears in the
   handbook, and every simulation-backed one names a real ``FIGURE_PLANS``
   family with chart metadata — ``render`` output cannot go undocumented.

Run from anywhere: ``python tools/check_docs.py``.  Exits non-zero and
prints one line per problem; also exercised by ``tests/docs/test_docs.py``
and the CI docs job.
"""

from __future__ import annotations

import os
import re
import sys
from typing import List

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules", ".benchmarks"}
# (?<!!) skips image embeds: retrieved paper dumps (PAPERS.md) reference
# figure bitmaps that are intentionally not vendored into the repo
LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def markdown_files() -> List[str]:
    found = []
    for directory, subdirs, filenames in os.walk(ROOT):
        subdirs[:] = [d for d in subdirs if d not in SKIP_DIRS]
        for filename in filenames:
            if filename.endswith(".md"):
                found.append(os.path.join(directory, filename))
    return sorted(found)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def check_links() -> List[str]:
    problems = []
    for path in markdown_files():
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        relpath = os.path.relpath(path, ROOT)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                anchor, file_target = target[1:], path
            else:
                file_part, _, anchor = target.partition("#")
                file_target = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part)
                )
                if not os.path.exists(file_target):
                    problems.append(f"{relpath}: broken link -> {target}")
                    continue
            if anchor and file_target.endswith(".md"):
                with open(file_target, "r", encoding="utf-8") as fh:
                    headings = HEADING_RE.findall(fh.read())
                slugs = {github_slug(h) for h in headings}
                if anchor.lower() not in slugs:
                    problems.append(f"{relpath}: broken anchor -> {target}")
    return problems


def check_figure_index() -> List[str]:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    try:
        from repro.cli import EXPERIMENTS
    except Exception as error:  # pragma: no cover - import environment issue
        return [f"could not import repro.cli to verify the figure index: {error}"]
    readme = os.path.join(ROOT, "README.md")
    if not os.path.exists(readme):
        return ["README.md is missing"]
    with open(readme, "r", encoding="utf-8") as fh:
        text = fh.read()
    return [
        f"README.md: experiment {name!r} missing from the figure index"
        for name in EXPERIMENTS
        if f"`{name}`" not in text
    ]


def check_experiments_handbook() -> List[str]:
    """Every FIGURE_PLANS family must appear in the handbook and README index.

    Names are looked up as backticked code spans (`` `name` ``), the way
    both documents list experiments.  Also asserts the plan registry and
    the CLI catalogue name the same families: an experiment reachable from
    one entry point but not the other is a wiring bug, not a docs bug, but
    it surfaces here because this is the only place both are imported.
    """
    sys.path.insert(0, os.path.join(ROOT, "src"))
    try:
        from repro.cli import EXPERIMENTS
        from repro.harness.figures import FIGURE_PLANS
    except Exception as error:  # pragma: no cover - import environment issue
        return [f"could not import repro to verify the experiments handbook: {error}"]
    problems = []
    for name in sorted(set(FIGURE_PLANS) ^ set(EXPERIMENTS)):
        problems.append(
            f"registry mismatch: experiment {name!r} is missing from "
            f"{'repro.cli.EXPERIMENTS' if name in FIGURE_PLANS else 'FIGURE_PLANS'}"
        )
    handbook = os.path.join(ROOT, "docs", "experiments.md")
    if not os.path.exists(handbook):
        return problems + ["docs/experiments.md is missing"]
    with open(handbook, "r", encoding="utf-8") as fh:
        handbook_text = fh.read()
    readme_text = ""
    readme = os.path.join(ROOT, "README.md")
    if os.path.exists(readme):
        with open(readme, "r", encoding="utf-8") as fh:
            readme_text = fh.read()
    for name in FIGURE_PLANS:
        if f"`{name}`" not in handbook_text:
            problems.append(
                f"docs/experiments.md: experiment family {name!r} missing "
                f"from the handbook"
            )
        if f"`{name}`" not in readme_text:
            problems.append(
                f"README.md: experiment family {name!r} missing from the "
                f"figure index"
            )
    return problems


def check_rendered_figures() -> List[str]:
    """Every registered ``render`` figure must be documented and wired.

    Names are looked up as backticked code spans in the handbook, like the
    experiment families.  Wiring: a family-backed registration must point
    at an existing ``FIGURE_PLANS`` entry and carry ``FIGURE_META`` chart
    metadata — a dangling registration would only surface at render time
    otherwise.
    """
    sys.path.insert(0, os.path.join(ROOT, "src"))
    try:
        from repro.analysis.registry import REGISTERED_FIGURES
        from repro.harness.figures import FIGURE_META, FIGURE_PLANS
    except Exception as error:  # pragma: no cover - import environment issue
        return [f"could not import repro.analysis to verify the figure registry: {error}"]
    problems = []
    handbook = os.path.join(ROOT, "docs", "experiments.md")
    if not os.path.exists(handbook):
        return ["docs/experiments.md is missing"]
    with open(handbook, "r", encoding="utf-8") as fh:
        handbook_text = fh.read()
    for name, figure in REGISTERED_FIGURES.items():
        if f"`{name}`" not in handbook_text:
            problems.append(
                f"docs/experiments.md: rendered figure {name!r} missing from "
                f"the handbook (From runs to figures)"
            )
        if figure.family is not None:
            if figure.family not in FIGURE_PLANS:
                problems.append(
                    f"figure registry: {name!r} names unknown family "
                    f"{figure.family!r}"
                )
            if figure.family not in FIGURE_META:
                problems.append(
                    f"figure registry: family {figure.family!r} of {name!r} "
                    f"has no FIGURE_META chart metadata"
                )
    return problems


def check_sharded_docs() -> List[str]:
    """The sharded-simulation surface must stay documented.

    Every scenario in ``repro.harness.shard.SHARD_SCENARIOS`` must appear
    as a backticked span in the experiments handbook, the handbook must
    document the ``shard`` CLI subcommand, and the architecture document
    must keep its "Sharded simulation" section naming the two rules the
    conformance suite enforces (the lookahead invariant and the
    digest-merge rule).
    """
    sys.path.insert(0, os.path.join(ROOT, "src"))
    try:
        from repro.harness.shard import SHARD_SCENARIOS
    except Exception as error:  # pragma: no cover - import environment issue
        return [f"could not import repro.harness.shard to verify its docs: {error}"]
    problems = []
    handbook = os.path.join(ROOT, "docs", "experiments.md")
    architecture = os.path.join(ROOT, "docs", "architecture.md")
    if not os.path.exists(handbook):
        return ["docs/experiments.md is missing"]
    with open(handbook, "r", encoding="utf-8") as fh:
        handbook_text = fh.read()
    if "`shard`" not in handbook_text:
        problems.append(
            "docs/experiments.md: the `shard` CLI subcommand is undocumented"
        )
    for name in SHARD_SCENARIOS:
        if f"`{name}`" not in handbook_text:
            problems.append(
                f"docs/experiments.md: shard scenario {name!r} missing from "
                f"the handbook"
            )
    if not os.path.exists(architecture):
        return problems + ["docs/architecture.md is missing"]
    with open(architecture, "r", encoding="utf-8") as fh:
        architecture_text = fh.read()
    if "## Sharded simulation" not in architecture_text:
        problems.append(
            "docs/architecture.md: the 'Sharded simulation' section is missing"
        )
    else:
        for phrase in ("lookahead", "digest-merge"):
            if phrase not in architecture_text:
                problems.append(
                    f"docs/architecture.md: sharded-simulation section no "
                    f"longer explains the {phrase} rule"
                )
    return problems


def main() -> int:
    problems = (
        check_links()
        + check_figure_index()
        + check_experiments_handbook()
        + check_rendered_figures()
        + check_sharded_docs()
    )
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"docs OK: {len(markdown_files())} markdown files checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
