#!/usr/bin/env python3
"""Perf-regression gate over ``BENCH_perf.json`` and the perf history.

Compares the current perf capture against the recorded baseline
(``benchmarks/perf/baseline_seed.json``) and fails on:

* **events/sec regression** — a scenario's throughput fell *strictly more*
  than ``--threshold`` (default 10%) below its baseline (exit 1; a drop of
  exactly the threshold still passes).  Scenarios that record an
  ``aggregate_events_per_second`` column (sharded runs: total events over
  the slowest shard's CPU-busy seconds) are held to the same relative
  threshold on that column, *plus* an absolute floor — ``shard_scale``
  must sustain at least 1,000,000 aggregate events/sec, the sharded
  harness's headline claim, regardless of what the baseline recorded;
* **seeded-digest drift** — a scenario's flow digest no longer matches the
  baseline's, i.e. a change altered seeded packet-level behaviour (exit 3;
  this check is machine-independent and never tolerated);
* **missing scenario** — the baseline names a scenario the report lacks
  (exit 4: a silently dropped benchmark is a gate bypass);
* **bad inputs** — report/baseline/history missing, corrupt, or the
  history is *empty* (exit 5: the gate ran before ``run_perf.py``, or the
  trajectory was lost).

Exit code 2 is left to ``argparse`` usage errors.  When several problems
coexist every one is reported and the highest code wins.  Scenarios in the
report but not the baseline are noted, not failed (new scenarios land
before their baseline does).

The 10% default is the right gate when baseline and report come from the
same machine class (a developer's capture-then-optimize loop, a dedicated
perf runner).  Across machine classes raw events/sec is not comparable —
hosted CI passes a wider ``--threshold`` and relies on the digest and
structural checks, which do not degrade with hardware (see
``benchmarks/perf/README.md``).

Usage::

    python tools/check_perf.py                     # repo-root defaults
    python tools/check_perf.py --threshold 0.5     # cross-machine headroom
    python tools/check_perf.py --report R --baseline B --history H

Exercised exhaustively by ``tests/analysis/test_check_perf.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Tuple

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(ROOT, "BENCH_perf.json")
BASELINE_PATH = os.path.join(ROOT, "benchmarks", "perf", "baseline_seed.json")
HISTORY_PATH = os.path.join(ROOT, "BENCH_history.jsonl")

EXIT_OK = 0
EXIT_REGRESSION = 1
# 2 is argparse's usage-error exit
EXIT_DIGEST_DRIFT = 3
EXIT_MISSING_SCENARIO = 4
EXIT_BAD_INPUT = 5

#: absolute aggregate-throughput floors (events/sec) by report scenario
#: name.  CPU-busy-time based, so they hold on any machine class and are
#: checked whenever the scenario appears in the report — with or without
#: a baseline.
AGGREGATE_FLOORS = {"shard_scale": 1_000_000.0}


def _load_scenarios(path: str, label: str) -> Tuple[dict, List[Tuple[int, str]]]:
    """Load a perf JSON document's ``scenarios`` mapping, or a problem."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
        scenarios = document["scenarios"]
        if not isinstance(scenarios, dict):
            raise ValueError("'scenarios' is not a mapping")
    except FileNotFoundError:
        return {}, [(EXIT_BAD_INPUT,
                     f"missing {label}: {path} does not exist — "
                     f"run benchmarks/perf/run_perf.py first")]
    except (OSError, ValueError, KeyError, TypeError) as error:
        return {}, [(EXIT_BAD_INPUT, f"corrupt {label}: {path}: {error}")]
    return scenarios, []


def _check_history(path: str) -> Tuple[int, List[Tuple[int, str]]]:
    """Capture count of the history, or the problem that prevents counting."""
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from repro.analysis.history import HistoryError, read_history

    try:
        records = read_history(path)
    except FileNotFoundError:
        return 0, [(EXIT_BAD_INPUT,
                    f"missing history: {path} does not exist — "
                    f"run benchmarks/perf/run_perf.py first")]
    except HistoryError as error:
        return 0, [(EXIT_BAD_INPUT, f"corrupt history: {error}")]
    if not records:
        return 0, [(EXIT_BAD_INPUT,
                    f"empty history: {path} has no perf captures — "
                    f"run benchmarks/perf/run_perf.py first")]
    return len(records), []


def check(
    report_path: str,
    baseline_path: str,
    history_path: str | None,
    threshold: float,
) -> Tuple[int, List[str], List[str]]:
    """Run every gate; returns (exit_code, problem_lines, note_lines)."""
    problems: List[Tuple[int, str]] = []
    notes: List[str] = []

    current, report_problems = _load_scenarios(report_path, "report")
    problems.extend(report_problems)
    baseline, baseline_problems = _load_scenarios(baseline_path, "baseline")
    problems.extend(baseline_problems)

    checked = 0
    # an *empty* (but parseable) report must still fail the missing-scenario
    # check — guard on load success, not on the mappings being non-empty
    if not report_problems and not baseline_problems:
        for name, reference in sorted(baseline.items()):
            if name not in current:
                problems.append((
                    EXIT_MISSING_SCENARIO,
                    f"missing scenario: {name!r} is in the baseline but "
                    f"absent from the report",
                ))
                continue
            checked += 1
            measured = current[name]
            if measured.get("flow_digest") != reference.get("flow_digest"):
                problems.append((
                    EXIT_DIGEST_DRIFT,
                    f"digest drift: {name}: seeded flow digest "
                    f"{str(measured.get('flow_digest'))[:12]} != baseline "
                    f"{str(reference.get('flow_digest'))[:12]} — seeded "
                    f"behaviour changed",
                ))
            base_rate = float(reference.get("events_per_second", 0.0))
            rate = float(measured.get("events_per_second", 0.0))
            if base_rate > 0:
                drop = (base_rate - rate) / base_rate
                if drop > threshold:
                    problems.append((
                        EXIT_REGRESSION,
                        f"regression: {name}: events/sec fell {drop:.1%} "
                        f"(> {threshold:.0%} allowed): baseline "
                        f"{base_rate:,.1f} -> current {rate:,.1f}",
                    ))
            base_aggregate = float(
                reference.get("aggregate_events_per_second", 0.0)
            )
            aggregate = float(measured.get("aggregate_events_per_second", 0.0))
            if base_aggregate > 0:
                drop = (base_aggregate - aggregate) / base_aggregate
                if drop > threshold:
                    problems.append((
                        EXIT_REGRESSION,
                        f"regression: {name}: aggregate events/sec fell "
                        f"{drop:.1%} (> {threshold:.0%} allowed): baseline "
                        f"{base_aggregate:,.1f} -> current {aggregate:,.1f}",
                    ))
        for name in sorted(set(current) - set(baseline)):
            notes.append(f"note: scenario {name!r} has no baseline yet")
        for name, floor in sorted(AGGREGATE_FLOORS.items()):
            if name not in current:
                continue
            aggregate = float(
                current[name].get("aggregate_events_per_second", 0.0)
            )
            if aggregate < floor:
                problems.append((
                    EXIT_REGRESSION,
                    f"aggregate floor: {name}: {aggregate:,.1f} aggregate "
                    f"events/sec is below the {floor:,.0f} floor",
                ))

    captures = 0
    if history_path is not None:
        captures, history_problems = _check_history(history_path)
        problems.extend(history_problems)

    if problems:
        return max(code for code, _ in problems), [m for _, m in problems], notes
    notes.insert(
        0,
        f"perf OK: {checked} scenario(s) within {threshold:.0%} of baseline"
        + (f"; history has {captures} capture(s)" if history_path else ""),
    )
    return EXIT_OK, [], notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", default=REPORT_PATH,
                        help="current capture (default: repo BENCH_perf.json)")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="recorded baseline (default: baseline_seed.json)")
    parser.add_argument("--history", default=HISTORY_PATH,
                        help="perf-history JSONL (default: BENCH_history.jsonl)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the history checks entirely")
    parser.add_argument("--threshold", type=float, default=0.10, metavar="FRACTION",
                        help="events/sec drop tolerated before failing "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args(argv)
    if not 0 <= args.threshold < 1:
        parser.error(f"--threshold must be in [0, 1), got {args.threshold}")

    code, problems, notes = check(
        args.report, args.baseline,
        None if args.no_history else args.history,
        args.threshold,
    )
    for line in problems:
        print(line, file=sys.stderr)
    for line in notes:
        print(line)
    if problems:
        print(f"{len(problems)} perf problem(s)", file=sys.stderr)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
