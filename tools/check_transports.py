#!/usr/bin/env python3
"""Lint: protocol-name string literals belong in the transport registry.

The whole point of :mod:`repro.transports.registry` is that protocol names
are bound to their machinery in exactly one place.  A stray ``"DCQCN"``
literal in an experiment builder or example quietly recreates the private
protocol dicts the registry replaced, and rots the moment a transport is
renamed or added.  This tool walks every Python file's AST and flags any
string constant that, after ``.strip().lower()``, equals a registered
transport name (short id or display name).

Sanctioned exceptions:

* ``src/repro/transports/registry.py`` itself — the one home of the
  literals;
* test files (anything under a ``tests`` directory, ``test_*.py``,
  ``conftest.py``) — tests exercise the CLI with user-style spellings;
* lines carrying a ``# transport-name-ok`` pragma, for the handful of
  places where a name collides with something that is not a protocol
  reference (e.g. the ``phost`` *experiment family* key).

Run from anywhere: ``python tools/check_transports.py``.  Exits non-zero
and prints one ``path:line: literal`` per problem; wired into the test
suite next to ``check_docs.py`` via ``tests/docs/test_check_transports.py``.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules", ".benchmarks"}
#: directories scanned for protocol-name literals
SCAN_DIRS = ("src", "examples", "benchmarks", "tools")
#: the sanctioned home of the literals, relative to the repo root
REGISTRY_PATH = os.path.join("src", "repro", "transports", "registry.py")
PRAGMA = "# transport-name-ok"


def _is_test_file(relpath: str) -> bool:
    parts = relpath.split(os.sep)
    filename = parts[-1]
    return (
        "tests" in parts
        or filename.startswith("test_")
        or filename == "conftest.py"
    )


def python_files() -> List[str]:
    found = []
    for scan_dir in SCAN_DIRS:
        base = os.path.join(ROOT, scan_dir)
        if not os.path.isdir(base):
            continue
        for directory, subdirs, filenames in os.walk(base):
            subdirs[:] = [d for d in subdirs if d not in SKIP_DIRS]
            for filename in filenames:
                if filename.endswith(".py"):
                    found.append(os.path.join(directory, filename))
    return sorted(found)


def check_file(path: str, literals: set) -> List[str]:
    relpath = os.path.relpath(path, ROOT)
    if relpath == REGISTRY_PATH or _is_test_file(relpath):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as error:
        return [f"{relpath}: could not parse: {error}"]
    lines = source.splitlines()
    problems = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
            continue
        if node.value.strip().lower() not in literals:
            continue
        line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if PRAGMA in line:
            continue
        problems.append(
            f"{relpath}:{node.lineno}: protocol-name literal {node.value!r} — "
            f"import the constant from repro.transports.registry instead"
        )
    return problems


def main() -> int:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    try:
        from repro.transports import registry
    except Exception as error:  # pragma: no cover - import environment issue
        print(f"could not import the transport registry: {error}", file=sys.stderr)
        return 1
    literals = set(registry.protocol_literals())
    problems = []
    for path in python_files():
        problems.extend(check_file(path, literals))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} protocol-literal problem(s)", file=sys.stderr)
        return 1
    print(
        f"transports OK: {len(python_files())} python files checked against "
        f"{len(literals)} registered names"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
