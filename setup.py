"""Legacy setuptools entry point.

The project metadata lives in ``pyproject.toml``; this stub exists so the
package can be installed in editable mode (``pip install -e .``) on
environments whose setuptools/pip predate PEP 660 editable wheels.
"""

from setuptools import setup

setup()
